//! Lossless `f64` ↔ JSON value encoding, shared by every JSONL line
//! format in the workspace (shard partials, serve telemetry/status
//! lines, the telemetry summary export).
//!
//! The vendored `serde_json` prints non-finite floats as `null` and
//! `-0.0` as `0`; both would silently break the bit-identity contract
//! the partial/checkpoint formats rely on. This module encodes the four
//! lossy cases as strings and everything else as a plain JSON number
//! (whose shortest decimal spelling round-trips exactly):
//!
//! * `NaN`  → `"nan:<16-hex-digit bit pattern>"` (payload preserved),
//! * `+∞`   → `"inf"`, `-∞` → `"-inf"`,
//! * `-0.0` → `"-0"`.
//!
//! Decoding accepts both plain numbers and the string forms, so formats
//! that previously wrote plain numbers stay readable.

use serde::{Error, Value};

/// Encode one `f64` without losing any bit pattern.
#[must_use]
pub fn float_to_value(x: f64) -> Value {
    if x.is_nan() {
        Value::Str(format!("nan:{:016x}", x.to_bits()))
    } else if x == f64::INFINITY {
        Value::Str("inf".into())
    } else if x == f64::NEG_INFINITY {
        Value::Str("-inf".into())
    } else if x == 0.0 && x.is_sign_negative() {
        Value::Str("-0".into())
    } else {
        Value::Num(x)
    }
}

/// Decode a float written by [`float_to_value`] (or a plain number).
pub fn float_from_value(v: &Value) -> Result<f64, Error> {
    if let Some(n) = v.as_f64() {
        return Ok(n);
    }
    match v.as_str() {
        Some("inf") => Ok(f64::INFINITY),
        Some("-inf") => Ok(f64::NEG_INFINITY),
        Some("-0") => Ok(-0.0),
        Some(s) => s
            .strip_prefix("nan:")
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .map(f64::from_bits)
            .ok_or_else(|| Error::custom(format!("invalid float encoding '{s}'"))),
        None => Err(Error::custom("expected a number or float string")),
    }
}

/// [`float_to_value`] lifted over `Option` (`None` → `null`).
#[must_use]
pub fn opt_float_to_value(x: Option<f64>) -> Value {
    x.map_or(Value::Null, float_to_value)
}

/// [`float_from_value`] lifted over `Option` (`null` → `None`).
pub fn opt_float_from_value(v: &Value) -> Result<Option<f64>, Error> {
    match v {
        Value::Null => Ok(None),
        other => float_from_value(other).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_special_case_round_trips_bitwise() {
        let specials = [
            f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef), // payload NaN
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            -f64::MAX,
        ];
        for &x in &specials {
            let v = float_to_value(x);
            let back = float_from_value(&v).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} lost bits");
        }
    }

    #[test]
    fn finite_floats_stay_plain_numbers() {
        assert!(matches!(float_to_value(2.5), Value::Num(n) if n == 2.5));
        assert!(matches!(float_to_value(0.0), Value::Num(n) if n == 0.0));
    }

    #[test]
    fn options_map_none_to_null() {
        assert!(matches!(opt_float_to_value(None), Value::Null));
        assert_eq!(opt_float_from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            opt_float_from_value(&float_to_value(-0.0))
                .unwrap()
                .unwrap()
                .to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn malformed_strings_are_rejected() {
        for bad in ["nan", "nan:xyz", "Infinity", ""] {
            assert!(float_from_value(&Value::Str(bad.into())).is_err(), "{bad}");
        }
        assert!(float_from_value(&Value::Bool(true)).is_err());
    }
}
