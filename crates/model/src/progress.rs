//! Per-application progress accounting: the application efficiency
//! `ρ̃(k)(t)` and its congestion-free optimum `ρ(k)(t)` from §2.2.
//!
//! ```text
//! ρ̃(k)(t) = Σ_{i ≤ n(k)(t)} w(k,i) / (t − r_k)
//! ρ(k)(t)  = Σ_{i ≤ n(k)(t)} w(k,i) / Σ_{i ≤ n(k)(t)} (w(k,i) + time_io(k,i))
//! ```
//!
//! where `n(k)(t)` is the number of **completed** instances at time `t`.
//! Because `t − r_k ≥ Σ (w + time_io)` always holds, `ρ̃ ≤ ρ` and the
//! dilation ratio `ρ̃/ρ ∈ [0, 1]` (1 = perfect progress). The online
//! heuristics of §3.1 order applications by `ρ̃/ρ` (MinDilation) or
//! `β·ρ̃` (MaxSysEff); both keys are provided here so every scheduler and
//! simulator in the workspace shares one definition.

use crate::app::{AppId, AppSpec};
use crate::platform::Platform;
use crate::units::{Time, EPS};
use serde::{Deserialize, Serialize};

/// Running progress state for one application.
///
/// The owner (simulator or live scheduler) calls
/// [`AppProgress::complete_instance`] each time an instance's I/O transfer
/// finishes, and [`AppProgress::finish`] when the last instance completes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppProgress {
    id: AppId,
    procs: u64,
    release: Time,
    /// `work_prefix[i]` = Σ_{j < i} w(k,j); length `n_tot + 1`.
    work_prefix: Vec<Time>,
    /// `span_prefix[i]` = Σ_{j < i} (w(k,j) + time_io(k,j)); length `n_tot + 1`.
    span_prefix: Vec<Time>,
    completed: usize,
    finish: Option<Time>,
}

impl AppProgress {
    /// Build the prefix tables for `spec` against `platform`.
    #[must_use]
    pub fn new(spec: &AppSpec, platform: &Platform) -> Self {
        let n = spec.instance_count();
        let mut work_prefix = Vec::with_capacity(n + 1);
        let mut span_prefix = Vec::with_capacity(n + 1);
        work_prefix.push(Time::ZERO);
        span_prefix.push(Time::ZERO);
        let mut work_acc = Time::ZERO;
        let mut span_acc = Time::ZERO;
        for inst in spec.pattern().iter() {
            let tio = platform.dedicated_io_time(spec.procs(), inst.vol);
            work_acc += inst.work;
            span_acc += inst.work + tio;
            work_prefix.push(work_acc);
            span_prefix.push(span_acc);
        }
        Self {
            id: spec.id(),
            procs: spec.procs(),
            release: spec.release(),
            work_prefix,
            span_prefix,
            completed: 0,
            finish: None,
        }
    }

    /// Application id.
    #[must_use]
    pub fn id(&self) -> AppId {
        self.id
    }

    /// `β(k)`.
    #[must_use]
    pub fn procs(&self) -> u64 {
        self.procs
    }

    /// `r_k`.
    #[must_use]
    pub fn release(&self) -> Time {
        self.release
    }

    /// Number of completed instances `n(k)(t)`.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Total number of instances `n_tot(k)`.
    #[must_use]
    pub fn total_instances(&self) -> usize {
        self.work_prefix.len() - 1
    }

    /// `d_k` if the application has finished.
    #[must_use]
    pub fn finish_time(&self) -> Option<Time> {
        self.finish
    }

    /// Work completed so far: `Σ_{i ≤ n(t)} w(k,i)`.
    #[must_use]
    pub fn work_done(&self) -> Time {
        self.work_prefix[self.completed]
    }

    /// Congestion-free span of the completed instances:
    /// `Σ_{i ≤ n(t)} (w + time_io)`.
    #[must_use]
    pub fn ideal_span_done(&self) -> Time {
        self.span_prefix[self.completed]
    }

    /// Record the completion of the next instance (I/O transfer finished).
    ///
    /// # Panics
    /// Panics if all instances were already completed.
    pub fn complete_instance(&mut self) {
        assert!(
            self.completed < self.total_instances(),
            "{}: instance completion beyond n_tot",
            self.id
        );
        self.completed += 1;
    }

    /// Mark the application finished at `t` (= `d_k`).
    ///
    /// # Panics
    /// Panics unless all instances completed.
    pub fn finish(&mut self, t: Time) {
        assert_eq!(
            self.completed,
            self.total_instances(),
            "{}: finished before completing all instances",
            self.id
        );
        self.finish = Some(t);
    }

    /// True once [`AppProgress::finish`] has been called.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finish.is_some()
    }

    /// The application efficiency `ρ̃(k)(t)`.
    ///
    /// Conventions at the boundary:
    /// * before (or at) release, or at `t == r_k`: no time has elapsed and
    ///   no progress was expected — defined as the current `ρ(k)(t)` so the
    ///   dilation ratio starts at 1;
    /// * after release with no completed instance: 0.
    #[must_use]
    pub fn rho_tilde(&self, t: Time) -> f64 {
        let elapsed = t - self.release;
        if elapsed.get() <= EPS {
            return self.rho(t);
        }
        let done = self.work_done();
        done / elapsed
    }

    /// The optimal (congestion-free) efficiency `ρ(k)(t)` over the
    /// completed instances. With no completed instance yet, the first
    /// instance's dedicated ratio is used (for periodic applications this
    /// equals the steady-state value).
    #[must_use]
    pub fn rho(&self, _t: Time) -> f64 {
        let upto = if self.completed == 0 {
            1 // expectation over the first instance
        } else {
            self.completed
        };
        let work = self.work_prefix[upto];
        let span = self.span_prefix[upto];
        if span.get() <= 0.0 {
            1.0
        } else {
            work / span
        }
    }

    /// The dilation ratio `ρ̃(k)(t) / ρ(k)(t) ∈ [0, 1]` (1 = on schedule).
    /// This is the MinDilation ordering key (§3.1: "favors applications
    /// with low values of ρ̃/ρ").
    #[must_use]
    pub fn dilation_ratio(&self, t: Time) -> f64 {
        let rho = self.rho(t);
        if rho <= 0.0 {
            return 1.0;
        }
        (self.rho_tilde(t) / rho).min(1.0)
    }

    /// The MaxSysEff ordering key `β(k)·ρ̃(k)(t)` (§3.1: "favors
    /// applications with low values of β(k)ρ̃(k)(t)").
    #[must_use]
    pub fn syseff_key(&self, t: Time) -> f64 {
        self.procs as f64 * self.rho_tilde(t)
    }

    /// The three prefix sums from which every `t`-dependent key above is
    /// derived: `(work_done, work_prefix[upto], span_prefix[upto])` with
    /// `upto` exactly as in [`AppProgress::rho`]. They change only when an
    /// instance completes, so a per-event hot path can cache them and
    /// rebuild `ρ̃`, `ρ`, the dilation ratio and the syseff key with the
    /// same operations on the same values — bit-identical to calling the
    /// methods here.
    #[must_use]
    pub fn key_parts(&self) -> (Time, Time, Time) {
        let upto = if self.completed == 0 {
            1
        } else {
            self.completed
        };
        (
            self.work_prefix[self.completed],
            self.work_prefix[upto],
            self.span_prefix[upto],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Bw, Bytes};

    fn platform() -> Platform {
        Platform::new("test", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    /// App on 100 procs (bw 10 GiB/s): w = 8 s, vol = 20 GiB → tio = 2 s,
    /// ρ = 0.8, three instances.
    fn app() -> AppSpec {
        AppSpec::periodic(0, Time::ZERO, 100, Time::secs(8.0), Bytes::gib(20.0), 3)
    }

    #[test]
    fn prefixes_accumulate() {
        let p = AppProgress::new(&app(), &platform());
        assert_eq!(p.total_instances(), 3);
        assert!(p.work_done().is_zero());
        assert!(p.ideal_span_done().is_zero());
    }

    #[test]
    fn rho_tilde_tracks_dedicated_execution() {
        let mut p = AppProgress::new(&app(), &platform());
        // At release: ratio defined as 1.
        assert!((p.dilation_ratio(Time::ZERO) - 1.0).abs() < 1e-12);
        // Mid-first-instance, nothing completed.
        assert_eq!(p.rho_tilde(Time::secs(5.0)), 0.0);
        // First instance completes at t = 10 s in dedicated mode.
        p.complete_instance();
        let rt = p.rho_tilde(Time::secs(10.0));
        assert!((rt - 0.8).abs() < 1e-12, "rho_tilde {rt}");
        assert!((p.dilation_ratio(Time::secs(10.0)) - 1.0).abs() < 1e-12);
        // If the same completion had happened at t = 20 s (congestion),
        // ρ̃ halves and the ratio drops to 0.5.
        assert!((p.rho_tilde(Time::secs(20.0)) - 0.4).abs() < 1e-12);
        assert!((p.dilation_ratio(Time::secs(20.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rho_is_constant_for_periodic_apps() {
        let mut p = AppProgress::new(&app(), &platform());
        assert!((p.rho(Time::ZERO) - 0.8).abs() < 1e-12);
        p.complete_instance();
        assert!((p.rho(Time::secs(10.0)) - 0.8).abs() < 1e-12);
        p.complete_instance();
        assert!((p.rho(Time::secs(100.0)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rho_varies_for_heterogeneous_apps() {
        use crate::app::{Instance, InstancePattern};
        let spec = AppSpec::new(
            0,
            Time::ZERO,
            100,
            InstancePattern::Explicit(vec![
                // ρ over first instance: 8 / 10 = 0.8
                Instance::new(Time::secs(8.0), Bytes::gib(20.0)),
                // ρ over both: 16 / (10 + 2 + 8... ) → w=8,tio=... vol 80 GiB → 8 s
                Instance::new(Time::secs(8.0), Bytes::gib(80.0)),
            ]),
        );
        let mut p = AppProgress::new(&spec, &platform());
        p.complete_instance();
        assert!((p.rho(Time::ZERO) - 0.8).abs() < 1e-12);
        p.complete_instance();
        // Σw = 16, Σ(w+tio) = 10 + 16 = 26.
        assert!((p.rho(Time::ZERO) - 16.0 / 26.0).abs() < 1e-12);
    }

    #[test]
    fn syseff_key_scales_with_procs() {
        let mut p = AppProgress::new(&app(), &platform());
        p.complete_instance();
        let key = p.syseff_key(Time::secs(10.0));
        assert!((key - 100.0 * 0.8).abs() < 1e-9);
    }

    #[test]
    fn finish_lifecycle() {
        let mut p = AppProgress::new(&app(), &platform());
        assert!(!p.is_finished());
        for _ in 0..3 {
            p.complete_instance();
        }
        p.finish(Time::secs(30.0));
        assert!(p.is_finished());
        assert_eq!(p.finish_time(), Some(Time::secs(30.0)));
    }

    #[test]
    #[should_panic(expected = "beyond n_tot")]
    fn over_completion_panics() {
        let mut p = AppProgress::new(&app(), &platform());
        for _ in 0..4 {
            p.complete_instance();
        }
    }

    #[test]
    #[should_panic(expected = "before completing")]
    fn premature_finish_panics() {
        let mut p = AppProgress::new(&app(), &platform());
        p.finish(Time::secs(1.0));
    }

    #[test]
    fn dilation_ratio_clamped_to_one() {
        // Completing "too fast" (numerically) must not produce ratios > 1.
        let mut p = AppProgress::new(&app(), &platform());
        p.complete_instance();
        // Completion recorded at t slightly *before* the ideal 10 s.
        let r = p.dilation_ratio(Time::secs(9.9999));
        assert!(r <= 1.0);
    }
}
