//! Descriptive statistics used by every experiment runner.
//!
//! The paper reports means over 200 random application mixes (Fig. 6),
//! averages over 56/11 congested moments (Tables 1–2), and distributions of
//! per-application throughput decrease (Fig. 1). This module provides the
//! small, allocation-conscious summary machinery those reports need.

use serde::{Deserialize, Serialize};

/// Largest sample the quantile reservoir retains exactly. Summaries of
/// up to this many observations merge with *exact* quantiles; larger
/// ones keep a deterministic stride-subsample (endpoints always
/// included), so merged quantiles degrade gracefully instead of being
/// dropped.
pub const RESERVOIR_CAP: usize = 512;

/// Five-number-style summary of a sample.
///
/// Summaries are *mergeable* ([`Summary::merge`]): count, mean,
/// standard deviation, min and max combine exactly (Chan et al.
/// pairwise update), and the quantiles recompute from the union of the
/// two sorted reservoirs — one code path for windowed (time-sliced) and
/// sharded (per-worker / per-cell) aggregation.
///
/// Serde carries only the eight statistics — the reservoir is internal
/// sketch state (up to 512 floats that would dominate every exported
/// record), so JSON written before the reservoir existed still parses
/// and a *deserialized* summary merges with exact count/mean/std/min/
/// max but quantiles degraded to the side that still has a reservoir.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 95th percentile (linear interpolation). Telemetry reports tail
    /// utilization/contention through this.
    pub p95: f64,
    /// 99th percentile (linear interpolation).
    pub p99: f64,
    /// Sorted quantile reservoir backing [`Summary::merge`]: the full
    /// sorted sample up to [`RESERVOIR_CAP`] observations, a
    /// deterministic stride-subsample past it.
    pub reservoir: Vec<f64>,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty slice.
    #[must_use]
    pub fn from_slice(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Self {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            reservoir: cap_reservoir(sorted),
        })
    }

    /// The merge identity: an empty summary (`n = 0`, all statistics 0).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            max: 0.0,
            median: 0.0,
            p95: 0.0,
            p99: 0.0,
            reservoir: Vec::new(),
        }
    }

    /// Fold `other` into `self`: the summary of the union of both
    /// samples. Count, mean, std (pairwise-variance update), min and
    /// max are exact; the quantiles recompute from the union of the two
    /// reservoirs — exact while both sides are exact (the combined
    /// sample fits [`RESERVOIR_CAP`]). Once a side is a capped sketch
    /// its entries carry unequal mass, so each side is first resampled
    /// to a quantile grid sized by its share of the combined sample —
    /// a plain union would let a 10-observation shard outvote a
    /// 10k-observation one in the merged tails. Merging with
    /// [`Summary::empty`] (either side) is the identity.
    ///
    /// **Merge order matters bitwise.** In the exact regime the merged
    /// reservoir is the sorted multiset union of the inputs — the same
    /// whatever order the parts arrive in — but mean and std use
    /// floating-point pairwise updates whose rounding depends on the
    /// association of the folds, so `merge(a, b)` and `merge(b, a)` can
    /// differ in the last ulp. Every reducer that promises
    /// bit-identical results to a single-process run must therefore
    /// fold in one **canonical order**: ascending global seed-block
    /// index, the order the campaign cell fold performs (see
    /// `iosched-bench`'s `shard::merge_records`).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let exact = self.reservoir.len() == self.n && other.reservoir.len() == other.n;
        let merged = if exact {
            merge_sorted(&self.reservoir, &other.reservoir)
        } else {
            // Equal-mass sketch: side entries proportional to sample
            // share (each side keeps at least one entry).
            let total = self.n + other.n;
            let ka = ((RESERVOIR_CAP * self.n + total / 2) / total).clamp(1, RESERVOIR_CAP - 1);
            let kb = RESERVOIR_CAP - ka;
            merge_sorted(
                &quantile_grid(&self.reservoir, ka),
                &quantile_grid(&other.reservoir, kb),
            )
        };
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let m2 = self.std * self.std * (na - 1.0)
            + other.std * other.std * (nb - 1.0)
            + delta * delta * na * nb / n;
        self.mean += delta * nb / n;
        self.std = if n < 2.0 {
            0.0
        } else {
            (m2 / (n - 1.0)).sqrt()
        };
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.n += other.n;
        if !merged.is_empty() {
            self.median = percentile_sorted(&merged, 50.0);
            self.p95 = percentile_sorted(&merged, 95.0);
            self.p99 = percentile_sorted(&merged, 99.0);
        }
        self.reservoir = cap_reservoir(merged);
    }
}

impl serde::Serialize for Summary {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("n".to_string(), self.n.to_value()),
            ("mean".to_string(), self.mean.to_value()),
            ("std".to_string(), self.std.to_value()),
            ("min".to_string(), self.min.to_value()),
            ("max".to_string(), self.max.to_value()),
            ("median".to_string(), self.median.to_value()),
            ("p95".to_string(), self.p95.to_value()),
            ("p99".to_string(), self.p99.to_value()),
        ])
    }
}

impl serde::Deserialize for Summary {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for Summary"))?;
        fn field<T: serde::Deserialize>(
            m: &[(String, serde::Value)],
            key: &str,
        ) -> Result<T, serde::Error> {
            T::from_value(serde::map_get(m, key)).map_err(|e| e.at(key))
        }
        Ok(Self {
            n: field(m, "n")?,
            mean: field(m, "mean")?,
            std: field(m, "std")?,
            min: field(m, "min")?,
            max: field(m, "max")?,
            median: field(m, "median")?,
            p95: field(m, "p95")?,
            p99: field(m, "p99")?,
            reservoir: Vec::new(),
        })
    }
}

/// Union of two sorted samples by merge walk.
fn merge_sorted(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].total_cmp(&b[j]).is_le() {
            merged.push(a[i]);
            i += 1;
        } else {
            merged.push(b[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&a[i..]);
    merged.extend_from_slice(&b[j..]);
    merged
}

/// `k` evenly spaced quantiles of a **sorted** sample (the equal-mass
/// resampling behind [`Summary::merge`]'s sketch branch). Identity when
/// `k` covers the whole sample.
fn quantile_grid(sorted: &[f64], k: usize) -> Vec<f64> {
    if k >= sorted.len() {
        return sorted.to_vec();
    }
    if k == 1 {
        return vec![percentile_sorted(sorted, 50.0)];
    }
    (0..k)
        .map(|i| percentile_sorted(sorted, 100.0 * i as f64 / (k - 1) as f64))
        .collect()
}

/// Reduce a sorted sample to the reservoir: identity up to
/// [`RESERVOIR_CAP`], then a deterministic stride-subsample keeping
/// both endpoints.
fn cap_reservoir(sorted: Vec<f64>) -> Vec<f64> {
    let n = sorted.len();
    if n <= RESERVOIR_CAP {
        return sorted;
    }
    (0..RESERVOIR_CAP)
        .map(|k| sorted[k * (n - 1) / (RESERVOIR_CAP - 1)])
        .collect()
}

/// `p`-th percentile (0–100) of a **sorted** sample, linear interpolation
/// between closest ranks.
///
/// # Panics
/// Panics on an empty slice or `p` outside `[0, 100]`.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// `p`-th percentile of an unsorted sample (copies + sorts).
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, p)
}

/// Arithmetic mean; 0 for an empty slice (convenient for report rows).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of strictly positive values; 0 if any value ≤ 0 or the
/// slice is empty. Used for cross-case slowdown aggregation.
#[must_use]
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Histogram with uniform bins over `[lo, hi)`; values outside are clamped
/// into the terminal bins. Used for the Fig. 1 distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower bound of the first bin.
    pub lo: f64,
    /// Exclusive upper bound of the last bin.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Build a histogram with `bins` uniform bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Insert one observation.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterator of `(bin_center, count)` pairs.
    pub fn centers(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // Sample std of 1..4 is sqrt(5/3).
        assert!((s.std - (5.0_f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::from_slice(&[]).is_none());
    }

    #[test]
    fn summary_of_singleton() {
        let s = Summary::from_slice(&[7.0]).unwrap();
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
        // Every quantile of a single-element sample is that element.
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.p99, 7.0);
    }

    #[test]
    fn summary_tail_quantiles_interpolate() {
        // 0..=100: the p-th percentile is exactly p.
        let xs: Vec<f64> = (0..=100).map(f64::from).collect();
        let s = Summary::from_slice(&xs).unwrap();
        assert!((s.p95 - 95.0).abs() < 1e-12);
        assert!((s.p99 - 99.0).abs() < 1e-12);
        assert!((s.median - 50.0).abs() < 1e-12);
        // Interpolation between ranks: 4 points put p95 between the two
        // largest values.
        let s = Summary::from_slice(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert!((s.p95 - 38.5).abs() < 1e-12);
        assert!((s.p99 - 39.7).abs() < 1e-12);
    }

    #[test]
    fn summary_tail_quantiles_on_tie_heavy_slices() {
        // 99 copies of 1.0 and a single outlier: the tail quantiles sit on
        // the plateau until the very last rank.
        let mut xs = vec![1.0; 99];
        xs.push(100.0);
        let s = Summary::from_slice(&xs).unwrap();
        assert!((s.p95 - 1.0).abs() < 1e-12, "p95 {} on the plateau", s.p95);
        assert!(s.p99 > 1.0 && s.p99 < 100.0, "p99 {} interpolates", s.p99);
        assert_eq!(s.max, 100.0);
        // All-identical sample: every statistic collapses to the value.
        let s = Summary::from_slice(&[3.0; 17]).unwrap();
        assert_eq!(
            (s.p95, s.p99, s.median, s.min, s.max),
            (3.0, 3.0, 3.0, 3.0, 3.0)
        );
    }

    #[test]
    fn merge_of_two_halves_equals_the_whole() {
        let xs: Vec<f64> = (0..101).map(|i| f64::from(i) * 0.7 - 11.0).collect();
        let (a, b) = xs.split_at(37);
        let mut merged = Summary::from_slice(a).unwrap();
        merged.merge(&Summary::from_slice(b).unwrap());
        let whole = Summary::from_slice(&xs).unwrap();
        assert_eq!(merged.n, whole.n);
        assert!((merged.mean - whole.mean).abs() < 1e-12);
        assert!((merged.std - whole.std).abs() < 1e-12);
        assert_eq!(merged.min, whole.min);
        assert_eq!(merged.max, whole.max);
        // Under the reservoir cap the union is the full sample: the
        // quantiles are exact.
        assert_eq!(merged.median.to_bits(), whole.median.to_bits());
        assert_eq!(merged.p95.to_bits(), whole.p95.to_bits());
        assert_eq!(merged.p99.to_bits(), whole.p99.to_bits());
        assert_eq!(merged.reservoir, whole.reservoir);
    }

    #[test]
    fn merge_order_is_exact_for_reservoirs_but_not_for_means() {
        // Three parts whose fold order provably flips the merged mean's
        // last ulp (the pairwise update is not associative) while the
        // exact-regime reservoir — a sorted multiset union — is
        // identical under every order. This is why reducers that
        // promise bit-identity must pin a canonical fold order.
        let parts: [&[f64]; 3] = [
            &[
                5.126_400_780_062_029_5,
                9.110_832_083_493_658,
                1.979_512_318_248_661_4,
                2.913_177_730_270_086_8,
            ],
            &[
                8.477_354_442_440_296,
                5.102_309_823_738_044,
                5.931_122_354_027_261,
                0.441_805_718_498_281_76,
            ],
            &[7.462_933_487_402_663, 4.102_452_129_138_324],
        ];
        let fold = |order: [usize; 3]| {
            let mut acc = Summary::from_slice(parts[order[0]]).unwrap();
            acc.merge(&Summary::from_slice(parts[order[1]]).unwrap());
            acc.merge(&Summary::from_slice(parts[order[2]]).unwrap());
            acc
        };
        let canonical = fold([0, 1, 2]);
        let reversed = fold([2, 1, 0]);
        assert_eq!(canonical.reservoir, reversed.reservoir);
        assert_eq!(canonical.n, reversed.n);
        assert!((canonical.mean - reversed.mean).abs() < 1e-12);
        assert_ne!(
            canonical.mean.to_bits(),
            reversed.mean.to_bits(),
            "these parts were chosen so the orders disagree by one ulp; \
             if this ever fails the doc claim should be re-examined, not the test weakened"
        );
    }

    #[test]
    fn merge_with_empty_is_the_identity() {
        let s = Summary::from_slice(&[2.0, 4.0, 8.0]).unwrap();
        // empty ⊕ nonempty.
        let mut acc = Summary::empty();
        acc.merge(&s);
        assert_eq!(acc, s);
        // nonempty ⊕ empty.
        let mut acc = s.clone();
        acc.merge(&Summary::empty());
        assert_eq!(acc, s);
        // empty ⊕ empty.
        let mut acc = Summary::empty();
        acc.merge(&Summary::empty());
        assert_eq!(acc.n, 0);
    }

    #[test]
    fn merge_on_tie_heavy_samples() {
        // 99 copies of 1.0 in one shard, the outlier in another: the
        // merged tails sit exactly where the whole-sample tails sit.
        let plateau = vec![1.0; 99];
        let mut merged = Summary::from_slice(&plateau).unwrap();
        merged.merge(&Summary::from_slice(&[100.0]).unwrap());
        let mut whole = plateau.clone();
        whole.push(100.0);
        let whole = Summary::from_slice(&whole).unwrap();
        assert_eq!(merged.n, 100);
        assert_eq!(merged.p95.to_bits(), whole.p95.to_bits());
        assert_eq!(merged.p99.to_bits(), whole.p99.to_bits());
        assert_eq!(merged.max, 100.0);
        assert!((merged.std - whole.std).abs() < 1e-9);
        // All-identical shards collapse to the value.
        let mut acc = Summary::from_slice(&[3.0; 8]).unwrap();
        acc.merge(&Summary::from_slice(&[3.0; 9]).unwrap());
        assert_eq!(
            (acc.mean, acc.std, acc.median, acc.p99),
            (3.0, 0.0, 3.0, 3.0)
        );
    }

    #[test]
    fn merge_is_associative_enough_across_many_shards() {
        // Fold 10 shards left-to-right; compare against the whole.
        let xs: Vec<f64> = (0..400).map(|i| ((i * 37) % 97) as f64).collect();
        let mut acc = Summary::empty();
        for chunk in xs.chunks(40) {
            acc.merge(&Summary::from_slice(chunk).unwrap());
        }
        let whole = Summary::from_slice(&xs).unwrap();
        assert_eq!(acc.n, whole.n);
        assert!((acc.mean - whole.mean).abs() < 1e-10);
        assert!((acc.std - whole.std).abs() < 1e-10);
        assert_eq!(acc.min, whole.min);
        assert_eq!(acc.max, whole.max);
        assert_eq!(acc.median.to_bits(), whole.median.to_bits());
    }

    #[test]
    fn reservoir_caps_deterministically_and_keeps_endpoints() {
        let xs: Vec<f64> = (0..5_000).map(f64::from).collect();
        let s = Summary::from_slice(&xs).unwrap();
        assert_eq!(s.reservoir.len(), RESERVOIR_CAP);
        assert_eq!(s.reservoir[0], 0.0);
        assert_eq!(*s.reservoir.last().unwrap(), 4_999.0);
        // Merging two capped summaries still tracks the true quantiles
        // closely (subsample approximation).
        let ys: Vec<f64> = (5_000..10_000).map(f64::from).collect();
        let mut merged = s.clone();
        merged.merge(&Summary::from_slice(&ys).unwrap());
        assert_eq!(merged.n, 10_000);
        assert!((merged.median - 4_999.5).abs() < 30.0, "{}", merged.median);
        assert!((merged.p99 - 9_900.0).abs() < 60.0, "{}", merged.p99);
        assert_eq!(merged.reservoir.len(), RESERVOIR_CAP);
    }

    #[test]
    fn serde_carries_the_statistics_but_not_the_reservoir() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("reservoir"), "sketch state must not export");
        let back: Summary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n, s.n);
        assert_eq!(back.mean.to_bits(), s.mean.to_bits());
        assert_eq!(back.p99.to_bits(), s.p99.to_bits());
        assert!(back.reservoir.is_empty());
        // Pre-reservoir JSON (no such field) still parses.
        let legacy = r#"{"n": 2, "mean": 1.5, "std": 0.7, "min": 1.0,
                         "max": 2.0, "median": 1.5, "p95": 1.95, "p99": 1.99}"#;
        let parsed: Summary = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed.n, 2);
        // A deserialized summary still merges: scalars exact, quantiles
        // degraded to the side that kept its reservoir.
        let mut acc = parsed;
        acc.merge(&Summary::from_slice(&[10.0, 20.0]).unwrap());
        assert_eq!(acc.n, 4);
        assert!((acc.mean - (1.0 + 2.0 + 10.0 + 20.0) / 4.0).abs() < 1e-12);
        assert_eq!(acc.max, 20.0);
    }

    #[test]
    fn merge_weights_uneven_shards_by_mass() {
        // A 5,000-observation bulk (capped sketch) merged with 10
        // outliers: the outliers are 0.2 % of the mass, so the merged
        // tails must stay in the bulk — a plain reservoir union would
        // let the 10 entries claim ~2 % and drag p99 to the outlier.
        let bulk: Vec<f64> = (0..5_000).map(f64::from).collect();
        let mut merged = Summary::from_slice(&bulk).unwrap();
        merged.merge(&Summary::from_slice(&[1.0e6; 10]).unwrap());
        assert_eq!(merged.n, 5_010);
        assert!((merged.median - 2_500.0).abs() < 50.0, "{}", merged.median);
        assert!(
            merged.p99 < 10_000.0,
            "p99 {} dragged to the outliers",
            merged.p99
        );
        assert_eq!(merged.max, 1.0e6, "max stays exact");
        // Mirror order: small shard first.
        let mut merged = Summary::from_slice(&[1.0e6; 10]).unwrap();
        merged.merge(&Summary::from_slice(&bulk).unwrap());
        assert!(merged.p99 < 10_000.0, "{}", merged.p99);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
        assert!((percentile(&xs, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_of_empty_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[]), 0.0);
        assert_eq!(geo_mean(&[1.0, 0.0]), 0.0);
        assert_eq!(geo_mean(&[1.0, -2.0]), 0.0);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.add(0.05); // bin 0
        h.add(0.95); // bin 9
        h.add(-5.0); // clamped to bin 0
        h.add(5.0); // clamped to bin 9
        h.add(1.0); // exactly hi → clamped to bin 9
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[9], 3);
        assert_eq!(h.total(), 5);
        let centers: Vec<f64> = h.centers().map(|(c, _)| c).collect();
        assert!((centers[0] - 0.05).abs() < 1e-12);
        assert!((centers[9] - 0.95).abs() < 1e-12);
    }
}
