//! Descriptive statistics used by every experiment runner.
//!
//! The paper reports means over 200 random application mixes (Fig. 6),
//! averages over 56/11 congested moments (Tables 1–2), and distributions of
//! per-application throughput decrease (Fig. 1). This module provides the
//! small, allocation-conscious summary machinery those reports need.

use serde::{Deserialize, Serialize};

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 95th percentile (linear interpolation). Telemetry reports tail
    /// utilization/contention through this.
    pub p95: f64,
    /// 99th percentile (linear interpolation).
    pub p99: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty slice.
    #[must_use]
    pub fn from_slice(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Self {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        })
    }
}

/// `p`-th percentile (0–100) of a **sorted** sample, linear interpolation
/// between closest ranks.
///
/// # Panics
/// Panics on an empty slice or `p` outside `[0, 100]`.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// `p`-th percentile of an unsorted sample (copies + sorts).
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, p)
}

/// Arithmetic mean; 0 for an empty slice (convenient for report rows).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of strictly positive values; 0 if any value ≤ 0 or the
/// slice is empty. Used for cross-case slowdown aggregation.
#[must_use]
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Histogram with uniform bins over `[lo, hi)`; values outside are clamped
/// into the terminal bins. Used for the Fig. 1 distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower bound of the first bin.
    pub lo: f64,
    /// Exclusive upper bound of the last bin.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Build a histogram with `bins` uniform bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Insert one observation.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterator of `(bin_center, count)` pairs.
    pub fn centers(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // Sample std of 1..4 is sqrt(5/3).
        assert!((s.std - (5.0_f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::from_slice(&[]).is_none());
    }

    #[test]
    fn summary_of_singleton() {
        let s = Summary::from_slice(&[7.0]).unwrap();
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
        // Every quantile of a single-element sample is that element.
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.p99, 7.0);
    }

    #[test]
    fn summary_tail_quantiles_interpolate() {
        // 0..=100: the p-th percentile is exactly p.
        let xs: Vec<f64> = (0..=100).map(f64::from).collect();
        let s = Summary::from_slice(&xs).unwrap();
        assert!((s.p95 - 95.0).abs() < 1e-12);
        assert!((s.p99 - 99.0).abs() < 1e-12);
        assert!((s.median - 50.0).abs() < 1e-12);
        // Interpolation between ranks: 4 points put p95 between the two
        // largest values.
        let s = Summary::from_slice(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert!((s.p95 - 38.5).abs() < 1e-12);
        assert!((s.p99 - 39.7).abs() < 1e-12);
    }

    #[test]
    fn summary_tail_quantiles_on_tie_heavy_slices() {
        // 99 copies of 1.0 and a single outlier: the tail quantiles sit on
        // the plateau until the very last rank.
        let mut xs = vec![1.0; 99];
        xs.push(100.0);
        let s = Summary::from_slice(&xs).unwrap();
        assert!((s.p95 - 1.0).abs() < 1e-12, "p95 {} on the plateau", s.p95);
        assert!(s.p99 > 1.0 && s.p99 < 100.0, "p99 {} interpolates", s.p99);
        assert_eq!(s.max, 100.0);
        // All-identical sample: every statistic collapses to the value.
        let s = Summary::from_slice(&[3.0; 17]).unwrap();
        assert_eq!(
            (s.p95, s.p99, s.median, s.min, s.max),
            (3.0, 3.0, 3.0, 3.0, 3.0)
        );
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
        assert!((percentile(&xs, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_of_empty_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[]), 0.0);
        assert_eq!(geo_mean(&[1.0, 0.0]), 0.0);
        assert_eq!(geo_mean(&[1.0, -2.0]), 0.0);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.add(0.05); // bin 0
        h.add(0.95); // bin 9
        h.add(-5.0); // clamped to bin 0
        h.add(5.0); // clamped to bin 9
        h.add(1.0); // exactly hi → clamped to bin 9
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[9], 3);
        assert_eq!(h.total(), 5);
        let centers: Vec<f64> = h.centers().map(|(c, _)| c).collect();
        assert!((centers[0] - 0.05).abs() < 1e-12);
        assert!((centers[9] - 0.95).abs() < 1e-12);
    }
}
