//! The application model of §2.1.
//!
//! Each application `App(k)` is released at time `r_k`, executes on `β(k)`
//! dedicated processors and consists of `n_tot(k)` *instances* that repeat
//! until the last one completes. Instance `I_i(k)` is `w(k,i)` units of
//! computation (executed at unit speed on dedicated resources, hence taking
//! exactly `w(k,i)` seconds) followed by a transfer of `vol_io(k,i)` bytes.
//!
//! *Periodic* applications (§2.1, §4.1) have constant `(w, vol)` across
//! instances; they are the common case in HPC (periodic checkpoints, S3D,
//! HOMME, GTC, Enzo, HACC, CM1 restart dumps). Non-periodic behaviour is
//! captured by [`InstancePattern::Explicit`], which §4.3 uses through the
//! *sensibility* perturbation.

use crate::error::ModelError;
use crate::platform::Platform;
use crate::units::{Bytes, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an application within a scenario (dense, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct AppId(pub usize);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "App({})", self.0)
    }
}

impl From<usize> for AppId {
    fn from(v: usize) -> Self {
        Self(v)
    }
}

/// One instance: a chunk of computation followed by an I/O transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// `w(k,i)`: units of computation (= seconds at unit speed).
    pub work: Time,
    /// `vol_io(k,i)`: bytes transferred after the computation.
    pub vol: Bytes,
}

impl Instance {
    /// Construct an instance.
    #[must_use]
    pub const fn new(work: Time, vol: Bytes) -> Self {
        Self { work, vol }
    }
}

/// The instance stream of an application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InstancePattern {
    /// `n_tot` identical instances — the periodic case.
    Periodic {
        /// `w(k)`: computation per instance.
        work: Time,
        /// `vol_io(k)`: I/O volume per instance.
        vol: Bytes,
        /// `n_tot(k)`: number of instances.
        count: usize,
    },
    /// Arbitrary per-instance values — the non-periodic case of §4.3.
    Explicit(Vec<Instance>),
}

impl InstancePattern {
    /// Number of instances `n_tot`.
    #[must_use]
    pub fn count(&self) -> usize {
        match self {
            Self::Periodic { count, .. } => *count,
            Self::Explicit(v) => v.len(),
        }
    }

    /// The `i`-th instance (0-based). Panics if out of range.
    #[must_use]
    pub fn instance(&self, i: usize) -> Instance {
        match self {
            Self::Periodic { work, vol, count } => {
                assert!(i < *count, "instance index {i} out of range {count}");
                Instance::new(*work, *vol)
            }
            Self::Explicit(v) => v[i],
        }
    }

    /// True when every instance is identical.
    #[must_use]
    pub fn is_periodic(&self) -> bool {
        match self {
            Self::Periodic { .. } => true,
            Self::Explicit(v) => v.windows(2).all(|w| w[0] == w[1]),
        }
    }

    /// Iterator over all instances.
    pub fn iter(&self) -> impl Iterator<Item = Instance> + '_ {
        (0..self.count()).map(move |i| self.instance(i))
    }
}

/// A complete application description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    id: AppId,
    /// `r_k`: release time.
    release: Time,
    /// `β(k)`: dedicated processors.
    procs: u64,
    pattern: InstancePattern,
}

impl AppSpec {
    /// Construct an application with an arbitrary instance stream.
    #[must_use]
    pub fn new(id: impl Into<AppId>, release: Time, procs: u64, pattern: InstancePattern) -> Self {
        Self {
            id: id.into(),
            release,
            procs,
            pattern,
        }
    }

    /// Construct a periodic application (`count` identical instances).
    #[must_use]
    pub fn periodic(
        id: impl Into<AppId>,
        release: Time,
        procs: u64,
        work: Time,
        vol: Bytes,
        count: usize,
    ) -> Self {
        Self::new(
            id,
            release,
            procs,
            InstancePattern::Periodic { work, vol, count },
        )
    }

    /// Application identifier.
    #[must_use]
    pub fn id(&self) -> AppId {
        self.id
    }

    /// Re-number the application (used when assembling scenarios).
    pub fn set_id(&mut self, id: impl Into<AppId>) {
        self.id = id.into();
    }

    /// Release time `r_k`.
    #[must_use]
    pub fn release(&self) -> Time {
        self.release
    }

    /// Set the release time (used by scenario generators to add jitter).
    pub fn set_release(&mut self, release: Time) {
        self.release = release;
    }

    /// Dedicated processor count `β(k)`.
    #[must_use]
    pub fn procs(&self) -> u64 {
        self.procs
    }

    /// The instance stream.
    #[must_use]
    pub fn pattern(&self) -> &InstancePattern {
        &self.pattern
    }

    /// Number of instances `n_tot(k)`.
    #[must_use]
    pub fn instance_count(&self) -> usize {
        self.pattern.count()
    }

    /// The `i`-th instance.
    #[must_use]
    pub fn instance(&self, i: usize) -> Instance {
        self.pattern.instance(i)
    }

    /// Total computation `Σ_i w(k,i)`.
    #[must_use]
    pub fn total_work(&self) -> Time {
        self.pattern.iter().map(|inst| inst.work).sum()
    }

    /// Total I/O volume `Σ_i vol_io(k,i)`.
    #[must_use]
    pub fn total_vol(&self) -> Bytes {
        self.pattern.iter().map(|inst| inst.vol).sum()
    }

    /// Congestion-free makespan on `platform`:
    /// `Σ_i (w(k,i) + time_io(k,i))` (all I/O in dedicated mode).
    #[must_use]
    pub fn dedicated_span(&self, platform: &Platform) -> Time {
        self.pattern
            .iter()
            .map(|inst| inst.work + platform.dedicated_io_time(self.procs, inst.vol))
            .sum()
    }

    /// The optimal application efficiency `ρ(k)` over the whole run
    /// (constant for periodic applications):
    /// `Σ w / Σ (w + time_io)` (§2.2).
    #[must_use]
    pub fn optimal_efficiency(&self, platform: &Platform) -> f64 {
        let work = self.total_work();
        let span = self.dedicated_span(platform);
        if span.get() <= 0.0 {
            1.0
        } else {
            work / span
        }
    }

    /// Validate application invariants.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.procs == 0 {
            return Err(ModelError::InvalidApp(format!(
                "{} must use at least one processor",
                self.id
            )));
        }
        if self.instance_count() == 0 {
            return Err(ModelError::InvalidApp(format!(
                "{} must have at least one instance",
                self.id
            )));
        }
        if !self.release.is_finite() || self.release.get() < 0.0 {
            return Err(ModelError::InvalidApp(format!(
                "{} release time must be finite and non-negative, got {}",
                self.id, self.release
            )));
        }
        let check = |i: usize, work: Time, vol: Bytes| -> Result<(), ModelError> {
            if !work.is_finite() || work.get() < 0.0 {
                return Err(ModelError::InvalidApp(format!(
                    "{} instance {i} has invalid work {work}",
                    self.id
                )));
            }
            if !vol.is_finite() || vol.get() < 0.0 {
                return Err(ModelError::InvalidApp(format!(
                    "{} instance {i} has invalid I/O volume {vol}",
                    self.id
                )));
            }
            if work.get() <= 0.0 && vol.get() <= 0.0 {
                return Err(ModelError::InvalidApp(format!(
                    "{} instance {i} has neither work nor I/O",
                    self.id
                )));
            }
            Ok(())
        };
        // A periodic pattern repeats one instance: checking it once is
        // enough, and must NOT loop — `count` is attacker-controlled in
        // online-submission contexts, and iterating 10^19 identical
        // instances would hang validation.
        match &self.pattern {
            InstancePattern::Periodic { work, vol, .. } => check(0, *work, *vol)?,
            InstancePattern::Explicit(instances) => {
                for (i, inst) in instances.iter().enumerate() {
                    check(i, inst.work, inst.vol)?;
                }
            }
        }
        Ok(())
    }
}

/// Validate a full scenario: every application valid, ids dense and unique
/// (any order — the engine keys everything on `AppId`, so a shuffled
/// roster describes the same closed system), and the processor assignment
/// feasible (`Σ β(k) ≤ N` — the paper assumes every application runs on
/// *dedicated* resources).
pub fn validate_scenario(platform: &Platform, apps: &[AppSpec]) -> Result<(), ModelError> {
    platform.validate()?;
    let mut seen = vec![false; apps.len()];
    let mut total_procs: u64 = 0;
    for app in apps {
        app.validate()?;
        match seen.get_mut(app.id().0) {
            Some(slot) if !*slot => *slot = true,
            Some(_) => {
                return Err(ModelError::InvalidApp(format!(
                    "duplicate application id {}",
                    app.id()
                )))
            }
            None => {
                return Err(ModelError::InvalidApp(format!(
                    "application ids must be dense in 0..{}: found {}",
                    apps.len(),
                    app.id()
                )))
            }
        }
        total_procs = total_procs.saturating_add(app.procs());
    }
    if total_procs > platform.procs {
        return Err(ModelError::InfeasibleAssignment(format!(
            "applications require {total_procs} processors but the platform has {}",
            platform.procs
        )));
    }
    Ok(())
}

/// One-application slice of the open-system contract — the single
/// encoding shared by [`validate_open_scenario`] (whole-slice) and the
/// stream engine's incremental admission: the application is
/// individually valid and individually feasible (`β(k) ≤ N`), its id is
/// dense at `position` in release order, and its release does not
/// precede `last_release`.
pub fn validate_open_arrival(
    platform: &Platform,
    app: &AppSpec,
    position: usize,
    last_release: Time,
) -> Result<(), ModelError> {
    app.validate()?;
    if app.id().0 != position {
        return Err(ModelError::InvalidApp(format!(
            "open-stream ids must be dense in release order: position {position} holds {}",
            app.id()
        )));
    }
    if app.procs() > platform.procs {
        return Err(ModelError::InfeasibleAssignment(format!(
            "{} requires {} processors but the platform has {}",
            app.id(),
            app.procs(),
            platform.procs
        )));
    }
    if app.release() < last_release {
        return Err(ModelError::InvalidApp(format!(
            "open-stream releases must be non-decreasing: {} at {} after {}",
            app.id(),
            app.release(),
            last_release
        )));
    }
    Ok(())
}

/// Validate an *open-system* roster (a dynamic arrival stream): every
/// application passes [`validate_open_arrival`] at its position. The
/// closed `Σ β(k) ≤ N` budget deliberately does **not** apply — an open
/// stream time-shares the machine over its lifetime. Note the model
/// does not queue on processors either: arrivals start computing at
/// release unconditionally, so in a supercritical regime the
/// *concurrent* processor demand can exceed `N` too — saturation is
/// meant to be read off the I/O queue/stretch metrics, not a processor
/// limit.
pub fn validate_open_scenario(platform: &Platform, apps: &[AppSpec]) -> Result<(), ModelError> {
    platform.validate()?;
    let mut last_release = Time::ZERO;
    for (i, app) in apps.iter().enumerate() {
        validate_open_arrival(platform, app, i, last_release)?;
        last_release = app.release();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bw;

    fn test_platform() -> Platform {
        Platform::new("test", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    #[test]
    fn periodic_pattern_instances_identical() {
        let app = AppSpec::periodic(3, Time::ZERO, 10, Time::secs(5.0), Bytes::gib(1.0), 4);
        assert_eq!(app.instance_count(), 4);
        assert!(app.pattern().is_periodic());
        for i in 0..4 {
            let inst = app.instance(i);
            assert!(inst.work.approx_eq(Time::secs(5.0)));
            assert!(inst.vol.approx_eq(Bytes::gib(1.0)));
        }
        assert!(app.total_work().approx_eq(Time::secs(20.0)));
        assert!(app.total_vol().approx_eq(Bytes::gib(4.0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn periodic_pattern_bounds_checked() {
        let app = AppSpec::periodic(0, Time::ZERO, 1, Time::secs(1.0), Bytes::gib(1.0), 2);
        let _ = app.instance(2);
    }

    #[test]
    fn explicit_pattern_detects_periodicity() {
        let same =
            InstancePattern::Explicit(vec![Instance::new(Time::secs(1.0), Bytes::gib(1.0)); 3]);
        assert!(same.is_periodic());
        let diff = InstancePattern::Explicit(vec![
            Instance::new(Time::secs(1.0), Bytes::gib(1.0)),
            Instance::new(Time::secs(2.0), Bytes::gib(1.0)),
        ]);
        assert!(!diff.is_periodic());
    }

    #[test]
    fn dedicated_span_and_optimal_efficiency() {
        let p = test_platform();
        // 100 procs → app bw = min(10, 10) = 10 GiB/s.
        // Instance: w = 8 s, vol = 20 GiB → tio = 2 s. ρ = 8/10 = 0.8.
        let app = AppSpec::periodic(0, Time::ZERO, 100, Time::secs(8.0), Bytes::gib(20.0), 5);
        assert!(app
            .dedicated_span(&p)
            .approx_eq(Time::secs(5.0 * (8.0 + 2.0))));
        assert!((app.optimal_efficiency(&p) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn optimal_efficiency_of_pure_compute_is_one() {
        let p = test_platform();
        let app = AppSpec::periodic(0, Time::ZERO, 10, Time::secs(5.0), Bytes::ZERO, 3);
        assert!((app.optimal_efficiency(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_apps() {
        let good = AppSpec::periodic(0, Time::ZERO, 10, Time::secs(1.0), Bytes::gib(1.0), 1);
        good.validate().unwrap();

        let no_procs = AppSpec::periodic(0, Time::ZERO, 0, Time::secs(1.0), Bytes::gib(1.0), 1);
        assert!(no_procs.validate().is_err());

        let no_instances = AppSpec::periodic(0, Time::ZERO, 1, Time::secs(1.0), Bytes::gib(1.0), 0);
        assert!(no_instances.validate().is_err());

        let negative_release =
            AppSpec::periodic(0, Time::secs(-1.0), 1, Time::secs(1.0), Bytes::gib(1.0), 1);
        assert!(negative_release.validate().is_err());

        let empty_instance = AppSpec::periodic(0, Time::ZERO, 1, Time::ZERO, Bytes::ZERO, 1);
        assert!(empty_instance.validate().is_err());
    }

    #[test]
    fn scenario_validation_checks_processor_budget() {
        let p = test_platform();
        let apps = vec![
            AppSpec::periodic(0, Time::ZERO, 600, Time::secs(1.0), Bytes::gib(1.0), 1),
            AppSpec::periodic(1, Time::ZERO, 500, Time::secs(1.0), Bytes::gib(1.0), 1),
        ];
        // 600 + 500 = 1100 > 1000 processors.
        assert!(matches!(
            validate_scenario(&p, &apps),
            Err(ModelError::InfeasibleAssignment(_))
        ));
    }

    #[test]
    fn scenario_validation_checks_dense_ids() {
        let p = test_platform();
        let apps = vec![AppSpec::periodic(
            7,
            Time::ZERO,
            1,
            Time::secs(1.0),
            Bytes::gib(1.0),
            1,
        )];
        assert!(validate_scenario(&p, &apps).is_err());
        // Duplicates are rejected too.
        let app = |id| AppSpec::periodic(id, Time::ZERO, 1, Time::secs(1.0), Bytes::gib(1.0), 1);
        assert!(validate_scenario(&p, &[app(0), app(0)]).is_err());
    }

    #[test]
    fn scenario_validation_accepts_any_permutation() {
        // A shuffled roster describes the same closed system: the ids
        // form a dense permutation, so validation passes in any order.
        let p = test_platform();
        let app = |id| AppSpec::periodic(id, Time::ZERO, 10, Time::secs(1.0), Bytes::gib(1.0), 1);
        validate_scenario(&p, &[app(2), app(0), app(1)]).unwrap();
    }

    #[test]
    fn open_scenario_validation_relaxes_the_budget_only() {
        let p = test_platform(); // 1,000 processors
        let app = |id, procs, rel| {
            AppSpec::periodic(
                id,
                Time::secs(rel),
                procs,
                Time::secs(1.0),
                Bytes::gib(1.0),
                1,
            )
        };
        // Σβ = 1,800 > 1,000: infeasible closed, fine as an open stream.
        let stream = [app(0, 600, 0.0), app(1, 600, 5.0), app(2, 600, 9.0)];
        assert!(validate_scenario(&p, &stream).is_err());
        validate_open_scenario(&p, &stream).unwrap();
        // A single application over the whole machine is still rejected.
        assert!(validate_open_scenario(&p, &[app(0, 1_200, 0.0)]).is_err());
        // Ids must be dense in release order, releases non-decreasing.
        assert!(validate_open_scenario(&p, &[app(1, 10, 0.0)]).is_err());
        let unsorted = [app(0, 10, 5.0), app(1, 10, 2.0)];
        assert!(validate_open_scenario(&p, &unsorted).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let app = AppSpec::new(
            2,
            Time::secs(10.0),
            64,
            InstancePattern::Explicit(vec![
                Instance::new(Time::secs(1.0), Bytes::gib(0.5)),
                Instance::new(Time::secs(2.0), Bytes::gib(1.5)),
            ]),
        );
        let j = serde_json::to_string(&app).unwrap();
        let back: AppSpec = serde_json::from_str(&j).unwrap();
        assert_eq!(app, back);
    }
}
