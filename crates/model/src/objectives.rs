//! The two optimization objectives of §2.2.
//!
//! * **SysEfficiency** (maximize): `(1/N) Σ_k β(k)·ρ̃(k)(d_k)` where
//!   `N = Σ_k β(k)` — the amount of CPU operations per time unit squeezed
//!   out of the platform's aggregated computational power.
//! * **Dilation** (minimize): `max_k ρ(k)(d_k) / ρ̃(k)(d_k)` — the largest
//!   slowdown imposed on any application (the classical *stretch*).
//!
//! The **upper limit** of SysEfficiency, `(1/N) Σ_k β(k)·ρ(k)(d_k)`, is what
//! a congestion-free oracle would achieve; Figures 8–13 plot it as the
//! ceiling of every congested moment.

use crate::app::AppId;
use crate::units::Time;
use serde::{Deserialize, Serialize};

/// Final per-application outcome of a schedule/simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AppOutcome {
    /// Which application.
    pub id: AppId,
    /// `β(k)`.
    pub procs: u64,
    /// `r_k`.
    pub release: Time,
    /// `d_k`: completion time of the last instance.
    pub finish: Time,
    /// `ρ(k)(d_k)`: congestion-free efficiency.
    pub rho: f64,
    /// `ρ̃(k)(d_k)`: achieved efficiency.
    pub rho_tilde: f64,
}

impl AppOutcome {
    /// This application's slowdown `ρ/ρ̃ ≥ 1`.
    #[must_use]
    pub fn dilation(&self) -> f64 {
        if self.rho_tilde <= 0.0 {
            f64::INFINITY
        } else {
            (self.rho / self.rho_tilde).max(1.0)
        }
    }

    /// Relative I/O throughput decrease vs dedicated mode, in `[0, 1]`.
    ///
    /// In the fluid model an application's end-to-end slowdown comes
    /// entirely from its I/O phases: compute time is fixed at `Σw`, so the
    /// extra time `(d−r) − Σ(w+tio)` is I/O wait. The effective I/O
    /// throughput is `vol / (io_time + wait)`; the decrease relative to the
    /// dedicated throughput `vol / io_time` is `1 − ρ̃·(1/ρ)·…` — computed
    /// here directly from the efficiency ratio restricted to the I/O part.
    /// Used to regenerate Fig. 1.
    #[must_use]
    pub fn io_throughput_decrease(&self) -> f64 {
        // elapsed = Σw / ρ̃ ; ideal = Σw / ρ  (for apps that completed work)
        // io_ideal   = ideal   − Σw = Σw (1/ρ − 1)
        // io_actual  = elapsed − Σw = Σw (1/ρ̃ − 1)
        // decrease   = 1 − io_ideal / io_actual.
        if self.rho_tilde <= 0.0 || self.rho <= 0.0 {
            return 0.0;
        }
        let ideal_io = 1.0 / self.rho - 1.0;
        let actual_io = 1.0 / self.rho_tilde - 1.0;
        if actual_io <= 0.0 || ideal_io <= 0.0 {
            return 0.0;
        }
        (1.0 - ideal_io / actual_io).clamp(0.0, 1.0)
    }
}

/// Aggregated objective values for one scenario run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectiveReport {
    /// `(1/N) Σ β ρ̃(d)` with `N = Σ β`, in `[0, 1]`.
    pub sys_efficiency: f64,
    /// `(1/N) Σ β ρ(d)`: the congestion-free ceiling, in `[0, 1]`.
    pub upper_limit: f64,
    /// `max_k ρ/ρ̃ ≥ 1`.
    pub dilation: f64,
    /// Per-application detail.
    pub per_app: Vec<AppOutcome>,
}

impl ObjectiveReport {
    /// Aggregate outcomes into the paper's two objectives (one
    /// [`ObjectiveAccumulator`] fold over the outcomes, in order).
    ///
    /// # Panics
    /// Panics on an empty outcome list: objectives are undefined.
    #[must_use]
    pub fn from_outcomes(per_app: Vec<AppOutcome>) -> Self {
        assert!(
            !per_app.is_empty(),
            "objectives need at least one application"
        );
        let mut acc = ObjectiveAccumulator::default();
        for outcome in &per_app {
            acc.fold(outcome);
        }
        acc.report(per_app)
    }

    /// SysEfficiency as a percentage (the unit of Tables 1–2).
    #[must_use]
    pub fn sys_efficiency_pct(&self) -> f64 {
        self.sys_efficiency * 100.0
    }

    /// Upper limit as a percentage.
    #[must_use]
    pub fn upper_limit_pct(&self) -> f64 {
        self.upper_limit * 100.0
    }

    /// Scenario makespan `max_k d_k`.
    #[must_use]
    pub fn makespan(&self) -> Time {
        self.per_app
            .iter()
            .map(|o| o.finish)
            .fold(Time::ZERO, Time::max)
    }

    /// Outcome of one application by id.
    #[must_use]
    pub fn app(&self, id: AppId) -> Option<&AppOutcome> {
        self.per_app.iter().find(|o| o.id == id)
    }
}

/// Streaming fold of the §2.2 aggregates — the one definition of the
/// procs-weighted sums shared by [`ObjectiveReport::from_outcomes`] and
/// consumers that retire applications one at a time without keeping the
/// per-application detail (the simulator's `per_app_detail = false`
/// path). Folding in a different order changes the floating-point sums
/// (but not the `max`-based dilation), so detail-free aggregates match
/// the collected report to rounding, bit-exactly only when fold order
/// equals outcome order.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObjectiveAccumulator {
    total_procs: f64,
    eff_sum: f64,
    upper_sum: f64,
    dilation: f64,
}

impl ObjectiveAccumulator {
    /// Fold one application's final outcome.
    pub fn fold(&mut self, outcome: &AppOutcome) {
        self.total_procs += outcome.procs as f64;
        self.eff_sum += outcome.procs as f64 * outcome.rho_tilde;
        self.upper_sum += outcome.procs as f64 * outcome.rho;
        self.dilation = self.dilation.max(outcome.dilation());
    }

    /// Close the fold into a report carrying `per_app` as its detail
    /// (pass an empty vector for the detail-free mode; all-zero
    /// aggregates result when nothing was folded).
    #[must_use]
    pub fn report(self, per_app: Vec<AppOutcome>) -> ObjectiveReport {
        let n = self.total_procs;
        ObjectiveReport {
            sys_efficiency: if n > 0.0 { self.eff_sum / n } else { 0.0 },
            upper_limit: if n > 0.0 { self.upper_sum / n } else { 0.0 },
            dilation: self.dilation.max(1.0),
            per_app,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: usize, procs: u64, rho: f64, rho_tilde: f64) -> AppOutcome {
        AppOutcome {
            id: AppId(id),
            procs,
            release: Time::ZERO,
            finish: Time::secs(100.0),
            rho,
            rho_tilde,
        }
    }

    #[test]
    fn report_matches_hand_computation() {
        let r = ObjectiveReport::from_outcomes(vec![
            outcome(0, 100, 0.8, 0.4), // dilation 2
            outcome(1, 300, 0.9, 0.9), // dilation 1
        ]);
        // SysEff = (100·0.4 + 300·0.9) / 400 = 310/400 = 0.775.
        assert!((r.sys_efficiency - 0.775).abs() < 1e-12);
        // Upper = (100·0.8 + 300·0.9) / 400 = 350/400 = 0.875.
        assert!((r.upper_limit - 0.875).abs() < 1e-12);
        assert!((r.dilation - 2.0).abs() < 1e-12);
        assert!((r.sys_efficiency_pct() - 77.5).abs() < 1e-9);
    }

    #[test]
    fn dilation_never_below_one() {
        // Numerical noise can put rho_tilde a hair above rho.
        let o = outcome(0, 1, 0.8, 0.8000001);
        assert_eq!(o.dilation(), 1.0);
    }

    #[test]
    fn zero_progress_app_dominates_dilation() {
        let r =
            ObjectiveReport::from_outcomes(vec![outcome(0, 1, 0.8, 0.8), outcome(1, 1, 0.8, 0.0)]);
        assert!(r.dilation.is_infinite());
    }

    #[test]
    fn io_throughput_decrease_examples() {
        // Dedicated execution: no decrease.
        let o = outcome(0, 1, 0.8, 0.8);
        assert!(o.io_throughput_decrease().abs() < 1e-12);
        // Congested: ρ = 0.8 (io = 0.25 of compute), ρ̃ = 0.5 (io+wait = 1.0
        // of compute) → I/O effectively 4× slower → 75 % decrease.
        let o = outcome(0, 1, 0.8, 0.5);
        assert!((o.io_throughput_decrease() - 0.75).abs() < 1e-12);
        // Pure-compute app: no I/O, no decrease.
        let o = outcome(0, 1, 1.0, 1.0);
        assert_eq!(o.io_throughput_decrease(), 0.0);
    }

    #[test]
    fn makespan_and_lookup() {
        let mut a = outcome(0, 1, 0.8, 0.8);
        a.finish = Time::secs(50.0);
        let mut b = outcome(1, 1, 0.8, 0.8);
        b.finish = Time::secs(70.0);
        let r = ObjectiveReport::from_outcomes(vec![a, b]);
        assert!(r.makespan().approx_eq(Time::secs(70.0)));
        assert!(r.app(AppId(1)).is_some());
        assert!(r.app(AppId(9)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn empty_report_panics() {
        let _ = ObjectiveReport::from_outcomes(vec![]);
    }
}
