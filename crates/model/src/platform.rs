//! The platform model of §2: `N` identical unit-speed processors, each with
//! an I/O card of bandwidth `b`, in front of a centralized I/O system of
//! total bandwidth `B`, optionally supplemented by burst buffers.

use crate::error::ModelError;
use crate::interference::Interference;
use crate::units::{Bw, Bytes, Time};
use serde::{Deserialize, Serialize};

/// Burst-buffer tier description (§4.4: "burst buffers act as additional
/// bandwidth to disks: when congestion occurs, as long as the burst buffers
/// are not full, the applications can resume their execution right after
/// they transferred their I/O volume to the burst buffer").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstBufferSpec {
    /// Total burst-buffer capacity.
    pub capacity: Bytes,
    /// Aggregate bandwidth from compute nodes into the burst buffer.
    /// Typically several times the PFS bandwidth `B`.
    pub absorb_bw: Bw,
}

impl BurstBufferSpec {
    /// Validate physical plausibility.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !self.capacity.is_finite() || self.capacity.get() <= 0.0 {
            return Err(ModelError::InvalidPlatform(format!(
                "burst buffer capacity must be finite and positive, got {}",
                self.capacity
            )));
        }
        if !self.absorb_bw.is_finite() || self.absorb_bw.get() <= 0.0 {
            return Err(ModelError::InvalidPlatform(format!(
                "burst buffer absorb bandwidth must be finite and positive, got {}",
                self.absorb_bw
            )));
        }
        Ok(())
    }
}

/// A parallel platform in the sense of §2.1.
///
/// Invariants (checked by [`Platform::validate`]):
/// * `procs ≥ 1`,
/// * `0 < proc_bw`, `0 < total_bw`, both finite,
/// * the optional burst buffer is itself valid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Human-readable name ("intrepid", "mira", …), used in reports.
    pub name: String,
    /// `N`: number of identical unit-speed processors.
    pub procs: u64,
    /// `b`: output bandwidth of each processor's I/O card.
    pub proc_bw: Bw,
    /// `B`: total bandwidth of the centralized I/O system.
    pub total_bw: Bw,
    /// Optional burst-buffer tier between compute nodes and the PFS.
    pub burst_buffer: Option<BurstBufferSpec>,
    /// Aggregate-bandwidth interference model (see [`Interference`]).
    pub interference: Interference,
}

impl Platform {
    /// A generic platform with no burst buffer and ideal sharing.
    #[must_use]
    pub fn new(name: impl Into<String>, procs: u64, proc_bw: Bw, total_bw: Bw) -> Self {
        Self {
            name: name.into(),
            procs,
            proc_bw,
            total_bw,
            burst_buffer: None,
            interference: Interference::None,
        }
    }

    /// Argonne's Intrepid (BlueGene/P, 40 racks, 2008-2014).
    ///
    /// Calibration (documented in DESIGN.md §1): `b = 0.05 GiB/s/node`,
    /// `B = 64 GiB/s`, chosen so the paper's small/large application
    /// boundary (1,284/1,285 nodes, §4.1) coincides with the point where a
    /// single application saturates the PFS (`β·b = B` at β = 1,280).
    #[must_use]
    pub fn intrepid() -> Self {
        Self::new(
            "intrepid",
            40_960,
            Bw::gib_per_sec(0.05),
            Bw::gib_per_sec(64.0),
        )
    }

    /// Argonne's Mira (BlueGene/Q, 48 racks, 49,152 nodes, 240 GB/s PFS).
    #[must_use]
    pub fn mira() -> Self {
        Self::new(
            "mira",
            49_152,
            Bw::gib_per_sec(0.05),
            Bw::gib_per_sec(240.0),
        )
    }

    /// Argonne's Vesta (Mira's 2-rack development platform, §5: 2,048 nodes,
    /// 32,768 compute cores). PFS bandwidth scaled as 2/48 of Mira's.
    #[must_use]
    pub fn vesta() -> Self {
        Self::new("vesta", 2_048, Bw::gib_per_sec(0.05), Bw::gib_per_sec(10.0))
    }

    /// Builder-style: attach a burst buffer tier.
    #[must_use]
    pub fn with_burst_buffer(mut self, spec: BurstBufferSpec) -> Self {
        self.burst_buffer = Some(spec);
        self
    }

    /// Builder-style: attach the default burst buffer used when modelling
    /// the native Intrepid/Mira/Vesta schedulers: absorb bandwidth 4×`B`
    /// and one minute of full-PFS capacity.
    #[must_use]
    pub fn with_default_burst_buffer(self) -> Self {
        let spec = BurstBufferSpec {
            capacity: self.total_bw * Time::secs(60.0),
            absorb_bw: self.total_bw * 4.0,
        };
        self.with_burst_buffer(spec)
    }

    /// Builder-style: set the interference model.
    #[must_use]
    pub fn with_interference(mut self, interference: Interference) -> Self {
        self.interference = interference;
        self
    }

    /// Maximum bandwidth a single application on `procs` processors can
    /// draw: `min(β·b, B)` (§2.1).
    #[must_use]
    pub fn app_max_bw(&self, procs: u64) -> Bw {
        (self.proc_bw * procs as f64).min(self.total_bw)
    }

    /// Minimum (dedicated-mode) time to transfer `vol` for an application
    /// on `procs` processors: `time_io = vol / min(β·b, B)` (§2.1).
    #[must_use]
    pub fn dedicated_io_time(&self, procs: u64, vol: Bytes) -> Time {
        vol / self.app_max_bw(procs)
    }

    /// Number of processors above which one application saturates the PFS.
    /// Applications at or above this size are "large" for scheduling
    /// purposes: giving them the disk exclusively wastes nothing.
    #[must_use]
    pub fn saturation_procs(&self) -> u64 {
        (self.total_bw.get() / self.proc_bw.get()).ceil() as u64
    }

    /// Validate all platform invariants.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.procs == 0 {
            return Err(ModelError::InvalidPlatform(
                "platform must have at least one processor".into(),
            ));
        }
        if !self.proc_bw.is_finite() || self.proc_bw.get() <= 0.0 {
            return Err(ModelError::InvalidPlatform(format!(
                "per-processor bandwidth must be finite and positive, got {}",
                self.proc_bw
            )));
        }
        if !self.total_bw.is_finite() || self.total_bw.get() <= 0.0 {
            return Err(ModelError::InvalidPlatform(format!(
                "total I/O bandwidth must be finite and positive, got {}",
                self.total_bw
            )));
        }
        if let Some(bb) = &self.burst_buffer {
            bb.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for p in [Platform::intrepid(), Platform::mira(), Platform::vesta()] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn intrepid_saturation_matches_category_boundary() {
        // DESIGN.md: the small/large boundary of §4.1 (1,284/1,285 nodes)
        // should sit at the PFS saturation point.
        let p = Platform::intrepid();
        assert_eq!(p.saturation_procs(), 1_280);
    }

    #[test]
    fn app_max_bw_is_min_of_cards_and_pfs() {
        let p = Platform::intrepid();
        // Small app: bound by its own I/O cards.
        let small = p.app_max_bw(100);
        assert!(small.approx_eq(Bw::gib_per_sec(5.0)));
        // Large app: bound by the PFS.
        let large = p.app_max_bw(10_000);
        assert!(large.approx_eq(p.total_bw));
    }

    #[test]
    fn dedicated_io_time_formula() {
        let p = Platform::new("test", 100, Bw::gib_per_sec(1.0), Bw::gib_per_sec(10.0));
        // 20 procs → min(20, 10) = 10 GiB/s; 50 GiB / 10 GiB/s = 5 s.
        let t = p.dedicated_io_time(20, Bytes::gib(50.0));
        assert!(t.approx_eq(Time::secs(5.0)));
        // 5 procs → min(5, 10) = 5 GiB/s; 50 GiB / 5 GiB/s = 10 s.
        let t = p.dedicated_io_time(5, Bytes::gib(50.0));
        assert!(t.approx_eq(Time::secs(10.0)));
    }

    #[test]
    fn validation_rejects_degenerate_platforms() {
        let mut p = Platform::intrepid();
        p.procs = 0;
        assert!(p.validate().is_err());

        let mut p = Platform::intrepid();
        p.proc_bw = Bw::ZERO;
        assert!(p.validate().is_err());

        let mut p = Platform::intrepid();
        p.total_bw = Bw::new(f64::NAN);
        assert!(p.validate().is_err());

        let p = Platform::intrepid().with_burst_buffer(BurstBufferSpec {
            capacity: Bytes::ZERO,
            absorb_bw: Bw::gib_per_sec(1.0),
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn default_burst_buffer_is_valid_and_bigger_than_pfs() {
        let p = Platform::mira().with_default_burst_buffer();
        p.validate().unwrap();
        let bb = p.burst_buffer.unwrap();
        assert!(bb.absorb_bw.get() > p.total_bw.get());
        assert!(bb.capacity.get() > 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Platform::vesta().with_default_burst_buffer();
        let j = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&j).unwrap();
        assert_eq!(p, back);
    }
}
