//! Cross-application interference model.
//!
//! §1 and Fig. 1 of the paper measure that uncoordinated concurrent access
//! to the shared parallel file system costs individual applications up to
//! ~70 % of their I/O throughput on Intrepid, and §3.1 motivates the
//! *Priority* heuristic variants by the cost of breaking disk locality when
//! several applications interleave requests on spinning disks.
//!
//! The paper's own simulator encodes that cost implicitly (it replays
//! congested moments observed on the real machine). Our substrate is fully
//! synthetic, so the cost is explicit: an [`Interference`] model maps the
//! number of applications concurrently streaming to the PFS to a
//! multiplicative factor on the *aggregate* bandwidth actually delivered.
//! The global heuristics of the paper serialize I/O (few concurrent
//! streams), which is precisely why they recover the lost throughput.

use serde::{Deserialize, Serialize};

/// Aggregate-bandwidth degradation as a function of concurrency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Interference {
    /// Ideal fluid sharing: `n` concurrent streams still deliver the full
    /// aggregate bandwidth. This is the model under which the paper's
    /// heuristics are analysed (§2: "never exceed the total bandwidth B").
    #[default]
    None,
    /// Disk-locality penalty: `n` interleaved streams deliver
    /// `B / (1 + alpha·(n−1))`.
    ///
    /// With the default `alpha = 0.0625` used by the native-scheduler
    /// baselines, 16 concurrent writers deliver ~52 % of `B` and 32 deliver
    /// ~34 %, matching the 50–70 % per-application throughput decrease of
    /// Fig. 1 on heavily shared moments.
    LocalityPenalty {
        /// Marginal relative seek cost of each additional concurrent stream.
        alpha: f64,
    },
}

impl Interference {
    /// Default penalty used to model the Intrepid/Mira/Vesta native disks.
    pub const DEFAULT_ALPHA: f64 = 0.0625;

    /// A locality penalty with the default calibration.
    #[must_use]
    pub fn default_penalty() -> Self {
        Self::LocalityPenalty {
            alpha: Self::DEFAULT_ALPHA,
        }
    }

    /// Multiplicative factor (in `(0, 1]`) on the aggregate PFS bandwidth
    /// when `concurrent` applications stream at the same time.
    #[must_use]
    pub fn factor(&self, concurrent: usize) -> f64 {
        match *self {
            Self::None => 1.0,
            Self::LocalityPenalty { alpha } => {
                if concurrent <= 1 {
                    1.0
                } else {
                    1.0 / (1.0 + alpha * (concurrent as f64 - 1.0))
                }
            }
        }
    }

    /// True when the model degrades bandwidth at all.
    #[must_use]
    pub fn is_penalizing(&self) -> bool {
        !matches!(self, Self::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_interference_is_identity() {
        for n in 0..100 {
            assert_eq!(Interference::None.factor(n), 1.0);
        }
    }

    #[test]
    fn single_stream_never_penalized() {
        let m = Interference::default_penalty();
        assert_eq!(m.factor(0), 1.0);
        assert_eq!(m.factor(1), 1.0);
    }

    #[test]
    fn penalty_is_monotone_decreasing() {
        let m = Interference::default_penalty();
        let mut prev = 1.0;
        for n in 2..64 {
            let f = m.factor(n);
            assert!(f < prev, "factor must strictly decrease with concurrency");
            assert!(f > 0.0);
            prev = f;
        }
    }

    #[test]
    fn calibration_matches_fig1_range() {
        // Fig. 1: congested moments show 50-70 % per-application throughput
        // decrease. With alpha = 0.0625, 16..=32 concurrent writers lose
        // 48-66 % of aggregate bandwidth.
        let m = Interference::default_penalty();
        let loss16 = 1.0 - m.factor(16);
        let loss32 = 1.0 - m.factor(32);
        assert!(
            (0.4..0.6).contains(&loss16),
            "16-stream loss {loss16} out of calibration band"
        );
        assert!(
            (0.6..0.75).contains(&loss32),
            "32-stream loss {loss32} out of calibration band"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let m = Interference::LocalityPenalty { alpha: 0.1 };
        let j = serde_json::to_string(&m).unwrap();
        let back: Interference = serde_json::from_str(&j).unwrap();
        assert_eq!(m, back);
    }
}
