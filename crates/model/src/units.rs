//! Strongly-typed scalar units: [`Time`] (seconds), [`Bytes`] and [`Bw`]
//! (bytes per second).
//!
//! The fluid simulation manipulates real-valued times, volumes and
//! bandwidths; all three are `f64` newtypes so that dimensional errors
//! (adding a bandwidth to a volume, say) are compile errors. Cross-unit
//! arithmetic implements the only physically meaningful combinations:
//!
//! * `Bytes / Bw   = Time`  — how long a transfer takes,
//! * `Bw    * Time = Bytes` — how much is transferred,
//! * `Bytes / Time = Bw`    — average throughput.
//!
//! Floating-point comparisons throughout the workspace go through the
//! `approx_*` helpers with a single global tolerance [`EPS`]; the simulator
//! additionally clamps residual volumes below `EPS` to zero so that rounding
//! never creates phantom events.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Global relative tolerance for unit comparisons.
///
/// Comparisons use a mixed absolute/relative tolerance
/// `EPS · max(1, |a|, |b|)`: for second-scale times this is an absolute
/// nano-tolerance, while for byte-scale volumes (1 GiB ≈ 2³⁰) it scales
/// with the magnitude so accumulated f64 rounding (≲ 2⁻⁵² relative per
/// operation) can never flip a comparison.
pub const EPS: f64 = 1e-9;

/// Mixed tolerance for a comparison of `a` and `b`.
#[inline]
#[must_use]
fn tol(a: f64, b: f64) -> f64 {
    EPS * a.abs().max(b.abs()).max(1.0)
}

/// `a ≈ b` within the mixed tolerance.
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= tol(a, b)
}

/// `a < b` strictly, beyond the mixed tolerance.
#[inline]
#[must_use]
pub fn approx_lt(a: f64, b: f64) -> bool {
    a < b - tol(a, b)
}

/// `a ≤ b` within the mixed tolerance.
#[inline]
#[must_use]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + tol(a, b)
}

/// `a > b` strictly, beyond the mixed tolerance.
#[inline]
#[must_use]
pub fn approx_gt(a: f64, b: f64) -> bool {
    a > b + tol(a, b)
}

/// `a ≥ b` within the mixed tolerance.
#[inline]
#[must_use]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b - tol(a, b)
}

macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident, $unit_label:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero value.
            pub const ZERO: Self = Self(0.0);

            /// Positive infinity (used as "no deadline" / "unbounded").
            pub const INFINITY: Self = Self(f64::INFINITY);

            /// Wrap a raw `f64`. Callers are responsible for the unit
            /// convention documented on the type.
            #[inline]
            #[must_use]
            pub const fn new(v: f64) -> Self {
                Self(v)
            }

            /// Raw value accessor.
            #[inline]
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// True when the value is finite (not NaN and not infinite).
            #[inline]
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// True when the value is within [`EPS`] of zero.
            #[inline]
            #[must_use]
            pub fn is_zero(self) -> bool {
                approx_eq(self.0, 0.0)
            }

            /// Approximate equality within [`EPS`].
            #[inline]
            #[must_use]
            pub fn approx_eq(self, other: Self) -> bool {
                approx_eq(self.0, other.0)
            }

            /// Strict less-than beyond [`EPS`].
            #[inline]
            #[must_use]
            pub fn approx_lt(self, other: Self) -> bool {
                approx_lt(self.0, other.0)
            }

            /// Less-or-equal within [`EPS`].
            #[inline]
            #[must_use]
            pub fn approx_le(self, other: Self) -> bool {
                approx_le(self.0, other.0)
            }

            /// Strict greater-than beyond [`EPS`].
            #[inline]
            #[must_use]
            pub fn approx_gt(self, other: Self) -> bool {
                approx_gt(self.0, other.0)
            }

            /// Greater-or-equal within [`EPS`].
            #[inline]
            #[must_use]
            pub fn approx_ge(self, other: Self) -> bool {
                approx_ge(self.0, other.0)
            }

            /// Component-wise minimum.
            #[inline]
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Component-wise maximum.
            #[inline]
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamp approximately-zero values (within the mixed tolerance,
            /// i.e. the absolute [`EPS`] at magnitudes ≤ 1) to exactly
            /// zero, so rounding residue never schedules a phantom event.
            #[inline]
            #[must_use]
            pub fn snap_zero(self) -> Self {
                if approx_eq(self.0, 0.0) {
                    Self(0.0)
                } else {
                    self
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            #[inline]
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            #[inline]
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.6}{}", self.0, $unit_label)
            }
        }
    };
}

unit_newtype!(
    /// A point in (or duration of) simulated time, in **seconds**.
    Time,
    "s"
);
unit_newtype!(
    /// A data volume, in **bytes** (convenience constructors use binary
    /// gigabytes, the unit the paper reasons in).
    Bytes,
    "B"
);
unit_newtype!(
    /// A bandwidth, in **bytes per second**.
    Bw,
    "B/s"
);

impl Time {
    /// A duration expressed in seconds.
    #[inline]
    #[must_use]
    pub const fn secs(s: f64) -> Self {
        Self::new(s)
    }

    /// Duration in seconds as a raw `f64`.
    #[inline]
    #[must_use]
    pub const fn as_secs(self) -> f64 {
        self.get()
    }
}

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

impl Bytes {
    /// A volume expressed in binary gigabytes (GiB).
    #[inline]
    #[must_use]
    pub fn gib(g: f64) -> Self {
        Self::new(g * GIB)
    }

    /// Volume in binary gigabytes.
    #[inline]
    #[must_use]
    pub fn as_gib(self) -> f64 {
        self.get() / GIB
    }
}

impl Bw {
    /// A bandwidth expressed in binary gigabytes per second (GiB/s).
    #[inline]
    #[must_use]
    pub fn gib_per_sec(g: f64) -> Self {
        Self::new(g * GIB)
    }

    /// Bandwidth in binary gigabytes per second.
    #[inline]
    #[must_use]
    pub fn as_gib_per_sec(self) -> f64 {
        self.get() / GIB
    }
}

impl Div<Bw> for Bytes {
    type Output = Time;
    /// Transfer duration: `vol / bandwidth`. Division by zero bandwidth
    /// yields `Time::INFINITY`, which the simulator treats as "never".
    #[inline]
    fn div(self, rhs: Bw) -> Time {
        if rhs.get() <= 0.0 {
            Time::INFINITY
        } else {
            Time::new(self.get() / rhs.get())
        }
    }
}

impl Div<Time> for Bytes {
    type Output = Bw;
    #[inline]
    fn div(self, rhs: Time) -> Bw {
        if rhs.get() <= 0.0 {
            Bw::INFINITY
        } else {
            Bw::new(self.get() / rhs.get())
        }
    }
}

impl Mul<Time> for Bw {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: Time) -> Bytes {
        Bytes::new(self.get() * rhs.get())
    }
}

impl Mul<Bw> for Time {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: Bw) -> Bytes {
        Bytes::new(self.get() * rhs.get())
    }
}

/// Total order on `f64`-backed units for use in sorts and heaps.
///
/// NaN is considered greater than everything so that corrupted values sink
/// to the end of ascending sorts where validation can catch them; the
/// simulator never produces NaN in the first place (validated on input).
#[inline]
#[must_use]
pub fn total_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_roundtrip() {
        let vol = Bytes::gib(10.0);
        let bw = Bw::gib_per_sec(2.0);
        let t = vol / bw;
        assert!(t.approx_eq(Time::secs(5.0)));
        assert!((bw * t).approx_eq(vol));
    }

    #[test]
    fn zero_bandwidth_is_never() {
        let t = Bytes::gib(1.0) / Bw::ZERO;
        assert!(!t.is_finite());
    }

    #[test]
    fn snap_zero_clamps_residue() {
        let v = Bytes::new(EPS / 2.0);
        assert!(v.snap_zero().is_zero());
        let v = Bytes::new(EPS * 10.0);
        assert!(!v.snap_zero().is_zero());
        let v = Bytes::new(-EPS / 2.0);
        assert_eq!(v.snap_zero().get(), 0.0);
    }

    #[test]
    fn approximate_comparisons() {
        let a = Time::secs(1.0);
        let b = Time::secs(1.0 + EPS / 2.0);
        assert!(a.approx_eq(b));
        assert!(a.approx_le(b));
        assert!(a.approx_ge(b));
        assert!(!a.approx_lt(b));
        assert!(!a.approx_gt(b));
        let c = Time::secs(2.0);
        assert!(a.approx_lt(c));
        assert!(c.approx_gt(a));
    }

    #[test]
    fn arithmetic_and_sums() {
        let xs = [Time::secs(1.0), Time::secs(2.0), Time::secs(3.0)];
        let s: Time = xs.iter().sum();
        assert!(s.approx_eq(Time::secs(6.0)));
        assert!((Time::secs(4.0) - Time::secs(1.5)).approx_eq(Time::secs(2.5)));
        assert!((Time::secs(2.0) * 3.0).approx_eq(Time::secs(6.0)));
        assert!((3.0 * Time::secs(2.0)).approx_eq(Time::secs(6.0)));
        assert!((Time::secs(6.0) / 3.0).approx_eq(Time::secs(2.0)));
        let ratio: f64 = Time::secs(6.0) / Time::secs(3.0);
        assert!((ratio - 2.0).abs() < EPS);
    }

    #[test]
    fn display_carries_unit_suffix() {
        assert!(format!("{}", Time::secs(1.0)).ends_with('s'));
        assert!(format!("{}", Bw::gib_per_sec(1.0)).ends_with("B/s"));
    }

    #[test]
    fn gib_conversions_roundtrip() {
        let v = Bytes::gib(3.5);
        assert!((v.as_gib() - 3.5).abs() < 1e-12);
        let bw = Bw::gib_per_sec(0.05);
        assert!((bw.as_gib_per_sec() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn serde_is_transparent() {
        let t = Time::secs(42.5);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "42.5");
        let back: Time = serde_json::from_str(&json).unwrap();
        assert!(back.approx_eq(t));
    }
}
