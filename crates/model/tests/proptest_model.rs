//! Property tests for the model substrate: unit arithmetic, progress
//! accounting and objective aggregation.

use iosched_model::{
    stats, AppId, AppOutcome, AppProgress, AppSpec, Bw, Bytes, ObjectiveReport, Platform, Time,
};
use proptest::prelude::*;

fn arb_platform() -> impl Strategy<Value = Platform> {
    (100u64..10_000, 0.01f64..0.5, 1.0f64..100.0).prop_map(|(procs, b, total)| {
        Platform::new("p", procs, Bw::gib_per_sec(b), Bw::gib_per_sec(total))
    })
}

proptest! {
    /// Transfer-time arithmetic: `vol / (vol / bw) == bw` and
    /// `bw · (vol / bw) == vol` for positive quantities.
    #[test]
    fn unit_arithmetic_roundtrips(vol_gib in 0.001f64..1e4, bw_gib in 0.001f64..1e3) {
        let vol = Bytes::gib(vol_gib);
        let bw = Bw::gib_per_sec(bw_gib);
        let t = vol / bw;
        prop_assert!((bw * t).approx_eq(vol));
        prop_assert!((vol / t).approx_eq(bw));
    }

    /// `app_max_bw` is monotone in β and capped by `B`.
    #[test]
    fn app_max_bw_monotone_and_capped(platform in arb_platform(), procs in 1u64..20_000) {
        let a = platform.app_max_bw(procs);
        let b = platform.app_max_bw(procs + 1);
        prop_assert!(a.approx_le(b));
        prop_assert!(a.approx_le(platform.total_bw));
    }

    /// Dedicated I/O time is monotone in volume and anti-monotone in β.
    #[test]
    fn dedicated_io_time_monotonicity(
        platform in arb_platform(),
        procs in 1u64..10_000,
        vol in 0.01f64..1e3,
    ) {
        let t1 = platform.dedicated_io_time(procs, Bytes::gib(vol));
        let t2 = platform.dedicated_io_time(procs, Bytes::gib(vol * 2.0));
        prop_assert!(t1.approx_le(t2));
        let t3 = platform.dedicated_io_time(procs * 2, Bytes::gib(vol));
        prop_assert!(t3.approx_le(t1));
    }

    /// For any completion history, ρ̃(t) ≤ ρ(t) whenever `t − r` is at
    /// least the ideal span of the completed instances (i.e. whenever the
    /// history is physically possible).
    #[test]
    fn rho_tilde_never_exceeds_rho(
        procs in 1u64..2_000,
        w in 0.1f64..100.0,
        vol in 0.01f64..100.0,
        n in 1usize..10,
        completed in 0usize..10,
        slack in 0.0f64..500.0,
    ) {
        let completed = completed.min(n);
        let platform = Platform::new("p", 4_000, Bw::gib_per_sec(0.05), Bw::gib_per_sec(10.0));
        let spec = AppSpec::periodic(0, Time::ZERO, procs, Time::secs(w),
                                     Bytes::gib(vol), n);
        let mut progress = AppProgress::new(&spec, &platform);
        for _ in 0..completed {
            progress.complete_instance();
        }
        // Earliest physically possible time for this history.
        let t = progress.ideal_span_done() + Time::secs(slack);
        prop_assert!(progress.rho_tilde(t) <= progress.rho(t) + 1e-9);
        prop_assert!(progress.dilation_ratio(t) <= 1.0);
        prop_assert!(progress.dilation_ratio(t) >= 0.0);
    }

    /// ObjectiveReport aggregates are bounded by their per-app parts.
    #[test]
    fn report_bounds(
        rhos in prop::collection::vec((0.01f64..1.0, 0.0f64..1.0, 1u64..5_000), 1..12),
    ) {
        let outcomes: Vec<AppOutcome> = rhos
            .iter()
            .enumerate()
            .map(|(i, &(rho, frac, procs))| AppOutcome {
                id: AppId(i),
                procs,
                release: Time::ZERO,
                finish: Time::secs(100.0),
                rho,
                rho_tilde: rho * frac, // ρ̃ ≤ ρ by construction
            })
            .collect();
        let report = ObjectiveReport::from_outcomes(outcomes.clone());
        prop_assert!(report.sys_efficiency <= report.upper_limit + 1e-12);
        let max_dil = outcomes.iter().map(AppOutcome::dilation).fold(1.0, f64::max);
        prop_assert!(
            report.dilation == max_dil
            || (report.dilation - max_dil).abs() < 1e-12
            || (report.dilation.is_infinite() && max_dil.is_infinite())
        );
    }

    /// Summary statistics are internally consistent.
    #[test]
    fn summary_consistency(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = stats::Summary::from_slice(&xs).unwrap();
        prop_assert_eq!(s.n, xs.len());
        prop_assert!(s.min <= s.median + 1e-9);
        prop_assert!(s.median <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentile_monotone(
        xs in prop::collection::vec(-1e6f64..1e6, 1..100),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = stats::percentile(&xs, lo);
        let b = stats::percentile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
    }

    /// Histogram never loses observations.
    #[test]
    fn histogram_counts_everything(xs in prop::collection::vec(-2.0f64..3.0, 0..300)) {
        let mut h = stats::Histogram::new(0.0, 1.0, 7);
        for &x in &xs {
            h.add(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
    }
}
