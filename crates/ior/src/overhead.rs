//! Scheduler-overhead measurement (Fig. 14).
//!
//! "This overhead was computed by comparing the execution time of one
//! application running the original IOR benchmark, with the execution
//! time of our modified version of the IOR benchmark that includes the
//! scheduler. In order to fairly compare […] the scheduler always allows
//! all requests to I/O."
//!
//! The *unscheduled* run executes the same iteration loop with I/O as a
//! plain scaled sleep of the dedicated transfer time (no scheduler, no
//! channels); the *scheduled* run uses the full request/grant protocol in
//! allow-all mode. The difference is pure protocol cost: channel hops,
//! scheduler wake-ups, allocation bookkeeping.

use crate::clock::SimClock;
use crate::harness::{run_ior, IorConfig};
use iosched_core::heuristics::RoundRobin;
use iosched_model::{AppSpec, ModelError, Platform};
use std::time::{Duration, Instant};

/// Result of one overhead comparison.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// Wall time of the scheduler-enabled run.
    pub scheduled: Duration,
    /// Wall time of the raw run.
    pub unscheduled: Duration,
    /// Relative execution-time overhead (`scheduled/unscheduled − 1`,
    /// clamped at 0 — timer noise can make it marginally negative).
    pub overhead_frac: f64,
}

/// Run the iteration loops without any scheduler: compute sleep plus a
/// dedicated-mode I/O sleep per instance, one thread per application.
#[must_use]
pub fn run_unscheduled(platform: &Platform, apps: &[AppSpec], speedup: f64) -> Duration {
    let started = Instant::now();
    let clock = SimClock::start(speedup);
    std::thread::scope(|scope| {
        for spec in apps {
            scope.spawn(move || {
                let release = spec.release();
                let now = clock.now();
                if release.approx_gt(now) {
                    clock.sleep_sim(release - now);
                }
                for i in 0..spec.instance_count() {
                    let inst = spec.instance(i);
                    clock.sleep_sim(inst.work);
                    clock.sleep_sim(platform.dedicated_io_time(spec.procs(), inst.vol));
                }
            });
        }
    });
    started.elapsed()
}

/// Measure the protocol overhead on one scenario.
pub fn measure_overhead(config: &IorConfig) -> Result<OverheadReport, ModelError> {
    let mut allow_all = config.clone();
    allow_all.allow_all = true;
    // Policy is irrelevant in allow-all mode; RoundRobin is a placeholder.
    let scheduled = run_ior(&allow_all, &mut RoundRobin)?.wall;
    let unscheduled = run_unscheduled(&config.platform, &config.apps, config.speedup);
    let overhead_frac = if unscheduled.as_secs_f64() > 0.0 {
        (scheduled.as_secs_f64() / unscheduled.as_secs_f64() - 1.0).max(0.0)
    } else {
        0.0
    };
    Ok(OverheadReport {
        scheduled,
        unscheduled,
        overhead_frac,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::{Bytes, Time};

    fn apps() -> Vec<AppSpec> {
        vec![
            AppSpec::periodic(0, Time::ZERO, 256, Time::secs(20.0), Bytes::gib(40.0), 3),
            AppSpec::periodic(1, Time::ZERO, 512, Time::secs(20.0), Bytes::gib(40.0), 3),
        ]
    }

    #[test]
    fn unscheduled_run_takes_about_the_dedicated_span() {
        let p = Platform::vesta();
        let apps = apps();
        let speedup = 2_000.0;
        let wall = run_unscheduled(&p, &apps, speedup);
        // App 1 (512 nodes → 10 GiB/s): 3 × (20 + 4) = 72 sim s;
        // app 0 (256 nodes → 10 GiB/s): same span. 72 s / 2000 = 36 ms.
        let expected = 0.036;
        let got = wall.as_secs_f64();
        assert!(
            got > expected * 0.9 && got < expected * 3.0,
            "wall {got}s vs expected ≈{expected}s"
        );
    }

    #[test]
    fn overhead_is_small_and_nonnegative() {
        let p = Platform::vesta();
        let mut cfg = IorConfig::new(p, apps());
        cfg.speedup = 1_000.0; // coarser scale → relatively lower noise
        let report = measure_overhead(&cfg).unwrap();
        assert!(report.overhead_frac >= 0.0);
        // The paper sees 1–5.3 %; allow generous CI headroom.
        assert!(
            report.overhead_frac < 0.30,
            "overhead {:.1}% implausibly high",
            report.overhead_frac * 100.0
        );
    }
}
