//! # iosched-ior
//!
//! A real-thread re-implementation of the paper's §5 experimental setup:
//! the modified IOR benchmark on Argonne's Vesta.
//!
//! "We modified the IOR benchmark by splitting its set of processes into
//! groups running independently on different nodes, where each group
//! represents a different application. One separate thread acts as the
//! scheduler and receives I/O requests for all groups […] each application
//! process sends a request to the scheduler thread each time it needs to
//! write some I/O volume."
//!
//! This crate reproduces that architecture with OS threads:
//!
//! * one thread per application group runs the IOR loop — sleep for the
//!   (scaled) compute phase, send a `Request` to the scheduler, block
//!   until the matching `Complete` arrives ([`app_thread`]),
//! * one scheduler thread owns the parallel file system: it applies any
//!   [`iosched_core::policy::OnlinePolicy`] to the outstanding requests,
//!   tracks fluid transfer progress in *real* (scaled) time, and wakes up
//!   exactly at predicted completions ([`scheduler`]),
//! * a [`clock::SimClock`] maps wall-clock time to simulated seconds so a
//!   multi-hour Vesta run takes a fraction of a second of real time.
//!
//! Everything the paper measures on Vesta is measured here: SysEfficiency
//! and Dilation per scenario (Fig. 15), per-application dilations
//! (Fig. 16), and the protocol overhead of running the scheduler at all
//! (Fig. 14, via [`overhead::measure_overhead`]).
//!
//! The substitution (real GPFS → fluid rate allocator on a scaled clock)
//! is documented in DESIGN.md §1: the scheduling *protocol* and its costs
//! are real; only the disk is simulated.

pub mod app_thread;
pub mod clock;
pub mod harness;
pub mod overhead;
pub mod protocol;
pub mod scheduler;

pub use clock::SimClock;
pub use harness::{run_ior, IorConfig, IorOutcome};
pub use overhead::{measure_overhead, OverheadReport};
