//! One IOR application group: the compute/request/wait loop of §5.1.
//!
//! "In addition, because IOR applications are communication-free, we
//! modified them to include some inter-processor communications at each
//! step […] an MPI_Reduce that adds the number of bytes written in the
//! last iteration." Here the compute phase (including that reduction) is
//! a scaled sleep; the I/O phase is the real request→grant→complete
//! round trip with the scheduler thread.

use crate::clock::SimClock;
use crate::protocol::{ToApp, ToScheduler};
use crossbeam::channel::{Receiver, Sender};
use iosched_model::{AppSpec, Time};

/// Timestamped record of one application thread's run.
#[derive(Debug, Clone, Default)]
pub struct AppThreadLog {
    /// Simulated completion time of each I/O phase (scheduler-observed).
    pub io_completions: Vec<Time>,
    /// Total bytes the group asked to write (all requests issued).
    pub bytes_requested: f64,
}

/// Run one application group to completion.
///
/// Returns early (with a partial log) if the scheduler goes away.
#[must_use]
pub fn run_app(
    spec: &AppSpec,
    clock: SimClock,
    to_scheduler: &Sender<ToScheduler>,
    from_scheduler: &Receiver<ToApp>,
) -> AppThreadLog {
    let mut log = AppThreadLog::default();

    // Honour the release time.
    let release = spec.release();
    let now = clock.now();
    if release.approx_gt(now) {
        clock.sleep_sim(release - now);
    }

    for i in 0..spec.instance_count() {
        let inst = spec.instance(i);
        // Compute phase: dedicated resources, scaled sleep.
        clock.sleep_sim(inst.work);
        // I/O phase: request → block → complete.
        log.bytes_requested += inst.vol.get();
        let request = ToScheduler::Request {
            app: spec.id(),
            vol: inst.vol,
            at: clock.now(),
        };
        if to_scheduler.send(request).is_err() {
            return log; // scheduler gone
        }
        match from_scheduler.recv() {
            Ok(ToApp::Complete { at }) => log.io_completions.push(at),
            Err(_) => return log,
        }
    }
    let _ = to_scheduler.send(ToScheduler::Finished { app: spec.id() });
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use iosched_model::{AppId, Bytes};

    #[test]
    fn app_issues_one_request_per_instance() {
        let spec = AppSpec::periodic(0, Time::ZERO, 10, Time::secs(1.0), Bytes::gib(1.0), 3);
        let clock = SimClock::start(10_000.0);
        let (to_sched, sched_rx) = unbounded();
        let (complete_tx, from_sched) = unbounded();

        // Fake scheduler granting instantly.
        let fake = std::thread::spawn(move || {
            let mut requests = 0;
            while let Ok(msg) = sched_rx.recv() {
                match msg {
                    ToScheduler::Request { vol, .. } => {
                        requests += 1;
                        assert!(vol.approx_eq(Bytes::gib(1.0)));
                        complete_tx
                            .send(ToApp::Complete {
                                at: Time::secs(requests as f64),
                            })
                            .unwrap();
                    }
                    ToScheduler::Finished { app } => {
                        assert_eq!(app, AppId(0));
                        break;
                    }
                }
            }
            requests
        });

        let log = run_app(&spec, clock, &to_sched, &from_sched);
        drop(to_sched);
        let requests = fake.join().unwrap();
        assert_eq!(requests, 3);
        assert_eq!(log.io_completions.len(), 3);
        assert!((log.bytes_requested - 3.0 * Bytes::gib(1.0).get()).abs() < 1.0);
    }

    #[test]
    fn app_survives_scheduler_disappearing() {
        let spec = AppSpec::periodic(0, Time::ZERO, 10, Time::secs(1.0), Bytes::gib(1.0), 5);
        let clock = SimClock::start(100_000.0);
        let (to_sched, sched_rx) = unbounded();
        let (_complete_tx, from_sched) = unbounded::<ToApp>();
        drop(sched_rx); // scheduler never existed
        drop(_complete_tx);
        let log = run_app(&spec, clock, &to_sched, &from_sched);
        assert!(log.io_completions.is_empty());
    }
}
