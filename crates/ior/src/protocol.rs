//! Messages between the application groups and the scheduler thread —
//! the request/grant protocol of §5.1.

use iosched_model::{AppId, Bytes, Time};

/// Application → scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ToScheduler {
    /// "I finished my compute phase and need to write `vol` bytes."
    Request {
        /// Requesting application.
        app: AppId,
        /// Volume of the I/O phase.
        vol: Bytes,
        /// Simulated time at which the request was issued.
        at: Time,
    },
    /// "All my instances are done" (after the last `Complete`).
    Finished {
        /// Terminating application.
        app: AppId,
    },
}

/// Scheduler → application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ToApp {
    /// The requested transfer has fully completed; resume computing.
    Complete {
        /// Simulated completion time, as observed by the scheduler.
        at: Time,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_plain_data() {
        let m = ToScheduler::Request {
            app: AppId(3),
            vol: Bytes::gib(1.0),
            at: Time::secs(2.0),
        };
        let copy = m;
        assert_eq!(m, copy);
        let c = ToApp::Complete {
            at: Time::secs(9.0),
        };
        assert_eq!(
            c,
            ToApp::Complete {
                at: Time::secs(9.0)
            }
        );
    }
}
