//! The scheduler thread: the §5.1 "one separate thread acts as the
//! scheduler and receives I/O requests for all groups in IOR".
//!
//! The thread owns the (fluid) parallel file system. It sleeps until
//! either a message arrives (a new I/O request) or the earliest predicted
//! transfer completion, then advances every in-flight transfer by the real
//! elapsed (scaled) time, completes what finished, re-runs the installed
//! policy over the outstanding requests, and picks the next wake-up. All
//! latencies of this loop — channel hops, wake-up jitter, allocation time
//! — are *real* and show up in the measured overhead (Fig. 14).

use crate::clock::SimClock;
use crate::protocol::{ToApp, ToScheduler};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use iosched_core::policy::{AppState, OnlinePolicy, StateBuffer};
use iosched_model::{AppProgress, AppSpec, Bw, Bytes, Platform, Time};
use iosched_sim::burst_buffer::BurstBufferState;
use std::time::Duration;

/// A transfer is fluid-complete when less than one byte remains.
const DONE_THRESHOLD: f64 = 1.0;

/// Fallback poll interval when no completion can be predicted (stalled
/// transfers waiting behind others).
const IDLE_POLL: Duration = Duration::from_millis(5);

/// Counters reported by the scheduler thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Requests received.
    pub requests: usize,
    /// Transfers completed.
    pub completions: usize,
    /// Policy re-allocations performed.
    pub reallocations: usize,
    /// recv_timeout wake-ups (timer or message).
    pub wakeups: usize,
}

struct Outstanding {
    remaining: Bytes,
    requested_at: Time,
    started: bool,
    rate: Bw, // effective delivered rate
}

/// Scheduler-thread state and main loop.
pub struct Scheduler<'a> {
    platform: &'a Platform,
    clock: SimClock,
    progress: Vec<AppProgress>,
    last_io_end: Vec<Time>,
    outstanding: Vec<Option<Outstanding>>,
    bb: Option<BurstBufferState>,
    drain_bw: Bw,
    last_advance: Time,
    allow_all: bool,
    stats: SchedulerStats,
    /// Reused policy-snapshot arena (same discipline as the fluid
    /// simulator's engine: refilled in place at every re-allocation).
    snapshot: StateBuffer,
    /// Reused scratch: indices with an outstanding request.
    pending: Vec<usize>,
}

impl<'a> Scheduler<'a> {
    /// Build the scheduler for `specs`.
    ///
    /// # Panics
    /// Panics when `use_burst_buffer` is set without a platform burst
    /// buffer, or an application has a zero-volume instance (IOR groups
    /// always write).
    #[must_use]
    pub fn new(
        platform: &'a Platform,
        specs: &[AppSpec],
        clock: SimClock,
        use_burst_buffer: bool,
        allow_all: bool,
    ) -> Self {
        for spec in specs {
            assert!(
                spec.pattern().iter().all(|i| i.vol.get() > 0.0),
                "{}: IOR applications must write in every iteration",
                spec.id()
            );
        }
        let bb = use_burst_buffer.then(|| {
            BurstBufferState::new(
                platform
                    .burst_buffer
                    .expect("use_burst_buffer requires a platform burst buffer"),
            )
        });
        Self {
            platform,
            clock,
            progress: specs
                .iter()
                .map(|s| AppProgress::new(s, platform))
                .collect(),
            last_io_end: specs.iter().map(AppSpec::release).collect(),
            outstanding: specs.iter().map(|_| None).collect(),
            bb,
            drain_bw: platform.total_bw,
            last_advance: Time::ZERO,
            allow_all,
            stats: SchedulerStats::default(),
            snapshot: StateBuffer::new(),
            pending: Vec::with_capacity(specs.len()),
        }
    }

    /// Run until every application finished; returns the progress records
    /// (carrying `d_k`, ρ, ρ̃) and the loop counters.
    #[must_use]
    pub fn run(
        mut self,
        rx: &Receiver<ToScheduler>,
        complete_tx: &[Sender<ToApp>],
        policy: &mut dyn OnlinePolicy,
    ) -> (Vec<AppProgress>, SchedulerStats) {
        loop {
            let now = self.clock.now();
            self.advance_to(now);
            self.complete_ready(now, complete_tx);
            if self.progress.iter().all(AppProgress::is_finished) {
                break;
            }
            self.reallocate(now, policy);

            let deadline = self.next_wakeup(now);
            self.stats.wakeups += 1;
            match rx.recv_timeout(deadline) {
                Ok(ToScheduler::Request { app, vol, at }) => {
                    self.stats.requests += 1;
                    self.outstanding[app.0] = Some(Outstanding {
                        remaining: vol,
                        requested_at: at,
                        started: false,
                        rate: Bw::ZERO,
                    });
                }
                Ok(ToScheduler::Finished { .. }) => {}
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // All application threads are gone; whatever is still
                    // outstanding can never be re-requested.
                    break;
                }
            }
        }
        (self.progress, self.stats)
    }

    /// Decay in-flight volumes (and the burst-buffer level) over the real
    /// elapsed scaled time.
    fn advance_to(&mut self, now: Time) {
        let dt = (now - self.last_advance).max(Time::ZERO);
        if dt.get() <= 0.0 {
            return;
        }
        let inflow: Bw = self.outstanding.iter().flatten().map(|o| o.rate).sum();
        for slot in self.outstanding.iter_mut().flatten() {
            if slot.rate.get() > 0.0 {
                slot.remaining = (slot.remaining - slot.rate * dt).max(Bytes::ZERO);
                slot.started = true;
            }
        }
        if let Some(bb) = &mut self.bb {
            bb.advance(dt, inflow, self.drain_bw);
        }
        self.last_advance = now;
    }

    /// Send `Complete` for every transfer that reached the threshold.
    fn complete_ready(&mut self, now: Time, complete_tx: &[Sender<ToApp>]) {
        for (idx, slot) in self.outstanding.iter_mut().enumerate() {
            let done = slot
                .as_ref()
                .is_some_and(|o| o.remaining.get() <= DONE_THRESHOLD);
            if done {
                *slot = None;
                self.progress[idx].complete_instance();
                self.last_io_end[idx] = now;
                if self.progress[idx].completed() == self.progress[idx].total_instances() {
                    self.progress[idx].finish(now);
                }
                self.stats.completions += 1;
                // The application may have crashed; a send error only
                // means nobody is waiting anymore.
                let _ = complete_tx[idx].send(ToApp::Complete { at: now });
            }
        }
    }

    /// Re-run the policy over the outstanding requests.
    fn reallocate(&mut self, now: Time, policy: &mut dyn OnlinePolicy) {
        let capacity = match &self.bb {
            Some(b) => b.ingest_capacity(self.platform.total_bw),
            None => self.platform.total_bw,
        };
        self.pending.clear();
        self.pending
            .extend((0..self.outstanding.len()).filter(|&i| self.outstanding[i].is_some()));
        if self.pending.is_empty() {
            // Same rule as the fluid engine: a burst buffer still draining
            // the interleaved data of earlier writers contends on the disk
            // tier even though nobody is ingesting.
            self.drain_bw = match &mut self.bb {
                Some(b) => {
                    self.platform.total_bw * self.platform.interference.factor(b.note_streams(0))
                }
                None => self.platform.total_bw,
            };
            return;
        }
        self.snapshot.clear();
        for &i in &self.pending {
            let o = self.outstanding[i].as_ref().expect("filtered Some");
            self.snapshot.push(AppState {
                id: self.progress[i].id(),
                procs: self.progress[i].procs(),
                dilation_ratio: self.progress[i].dilation_ratio(now),
                syseff_key: self.progress[i].syseff_key(now),
                last_io_end: self.last_io_end[i],
                io_requested_at: o.requested_at,
                started_io: o.started,
                max_bw: (self.platform.proc_bw * self.progress[i].procs() as f64).min(capacity),
            });
        }
        let grants: Vec<(iosched_model::AppId, Bw)> = if self.allow_all {
            // Overhead-measurement mode (§5.1): "the scheduler always
            // allows all requests to I/O" — everyone gets its card limit.
            self.snapshot
                .states()
                .iter()
                .map(|s| (s.id, s.max_bw))
                .collect()
        } else {
            let ctx = self.snapshot.context(now, capacity);
            let alloc = policy.allocate(&ctx);
            debug_assert!(alloc.validate(&ctx).is_ok(), "invalid allocation");
            alloc.grants
        };
        self.stats.reallocations += 1;

        let active = grants.iter().filter(|(_, b)| b.get() > 0.0).count();
        let contended = self.platform.interference.factor(active);
        let ingest_factor = match &self.bb {
            Some(b) if !b.is_throttled() => 1.0,
            _ => contended,
        };
        self.drain_bw = match &mut self.bb {
            Some(b) => {
                let streams = b.note_streams(active);
                self.platform.total_bw * self.platform.interference.factor(streams)
            }
            None => self.platform.total_bw,
        };
        for (rank, &i) in self.pending.iter().enumerate() {
            let id = self.snapshot.states()[rank].id;
            let granted = grants
                .iter()
                .find(|(a, _)| *a == id)
                .map_or(Bw::ZERO, |(_, b)| *b);
            if let Some(o) = self.outstanding[i].as_mut() {
                o.rate = granted * ingest_factor;
            }
        }
    }

    /// Real-time deadline for the next predicted event.
    fn next_wakeup(&self, now: Time) -> Duration {
        let mut next: Option<Time> = None;
        for o in self.outstanding.iter().flatten() {
            if o.rate.get() > 0.0 {
                let t = o.remaining / o.rate;
                next = Some(next.map_or(t, |n: Time| n.min(t)));
            }
        }
        if let Some(bb) = &self.bb {
            let inflow: Bw = self.outstanding.iter().flatten().map(|o| o.rate).sum();
            if let Some(t) = bb.next_event_in(inflow, self.drain_bw) {
                next = Some(next.map_or(t, |n: Time| n.min(t)));
            }
        }
        let _ = now;
        match next {
            Some(t) => self.clock.to_real(t).max(Duration::from_micros(50)),
            None => IDLE_POLL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use iosched_core::heuristics::RoundRobin;
    use iosched_model::AppId;

    fn platform() -> Platform {
        Platform::new("t", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    #[test]
    fn scheduler_completes_injected_requests() {
        let p = platform();
        let spec = AppSpec::periodic(0, Time::ZERO, 100, Time::secs(1.0), Bytes::gib(5.0), 2);
        let clock = SimClock::start(2_000.0);
        let sched = Scheduler::new(&p, &[spec], clock, false, false);
        let (tx, rx) = unbounded();
        let (ctx0, crx0) = unbounded();

        // Drive the protocol from this thread.
        let driver = std::thread::spawn(move || {
            for _ in 0..2 {
                tx.send(ToScheduler::Request {
                    app: AppId(0),
                    vol: Bytes::gib(5.0),
                    at: Time::ZERO,
                })
                .unwrap();
                let ToApp::Complete { .. } = crx0.recv().unwrap();
            }
            let _ = tx.send(ToScheduler::Finished { app: AppId(0) });
        });

        let mut policy = RoundRobin;
        let (progress, stats) = sched.run(&rx, &[ctx0], &mut policy);
        driver.join().unwrap();
        assert!(progress[0].is_finished());
        assert_eq!(stats.completions, 2);
        assert_eq!(stats.requests, 2);
        assert!(stats.reallocations >= 2);
    }

    #[test]
    #[should_panic(expected = "must write")]
    fn zero_volume_instances_rejected() {
        let p = platform();
        let spec = AppSpec::periodic(0, Time::ZERO, 10, Time::secs(1.0), Bytes::ZERO, 1);
        let clock = SimClock::start(1_000.0);
        let _ = Scheduler::new(&p, &[spec], clock, false, false);
    }
}
