//! Scaled monotonic clock: maps wall time to simulated seconds.

use iosched_model::Time;
use std::time::{Duration, Instant};

/// A monotonic clock running `speedup` simulated seconds per real second.
#[derive(Debug, Clone, Copy)]
pub struct SimClock {
    origin: Instant,
    speedup: f64,
}

impl SimClock {
    /// Start the clock now.
    ///
    /// # Panics
    /// Panics unless `speedup > 0`.
    #[must_use]
    pub fn start(speedup: f64) -> Self {
        assert!(
            speedup > 0.0 && speedup.is_finite(),
            "speedup must be positive"
        );
        Self {
            origin: Instant::now(),
            speedup,
        }
    }

    /// Simulated seconds per real second.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.speedup
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Time {
        Time::secs(self.origin.elapsed().as_secs_f64() * self.speedup)
    }

    /// Real duration corresponding to a simulated duration.
    #[must_use]
    pub fn to_real(&self, sim: Time) -> Duration {
        Duration::from_secs_f64((sim.as_secs() / self.speedup).max(0.0))
    }

    /// Sleep the current thread for a simulated duration.
    pub fn sleep_sim(&self, sim: Time) {
        let d = self.to_real(sim);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_speedup() {
        let clock = SimClock::start(1_000.0);
        std::thread::sleep(Duration::from_millis(10));
        let t = clock.now();
        // 10 ms real × 1000 = 10 sim seconds (generous tolerance for CI).
        assert!(t.as_secs() >= 9.0, "clock too slow: {t}");
        assert!(t.as_secs() < 200.0, "clock absurdly fast: {t}");
    }

    #[test]
    fn conversion_roundtrip() {
        let clock = SimClock::start(500.0);
        let d = clock.to_real(Time::secs(5.0));
        assert!((d.as_secs_f64() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn sleep_sim_sleeps_scaled() {
        let clock = SimClock::start(10_000.0);
        let before = Instant::now();
        clock.sleep_sim(Time::secs(50.0)); // 5 ms real
        let elapsed = before.elapsed();
        assert!(elapsed >= Duration::from_millis(4));
    }

    #[test]
    #[should_panic(expected = "speedup must be positive")]
    fn zero_speedup_panics() {
        let _ = SimClock::start(0.0);
    }
}
