//! End-to-end harness: spawn the application-group threads and the
//! scheduler thread, run to completion, report the paper's objectives.

use crate::app_thread::run_app;
use crate::clock::SimClock;
use crate::protocol::{ToApp, ToScheduler};
use crate::scheduler::{Scheduler, SchedulerStats};
use crossbeam::channel::unbounded;
use iosched_core::policy::OnlinePolicy;
use iosched_model::{
    app::validate_scenario, AppOutcome, AppSpec, ModelError, ObjectiveReport, Platform,
};
use std::time::{Duration, Instant};

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct IorConfig {
    /// The (Vesta-like) platform.
    pub platform: Platform,
    /// Application groups.
    pub apps: Vec<AppSpec>,
    /// Simulated seconds per real second.
    pub speedup: f64,
    /// Route I/O through the platform's burst buffer.
    pub use_burst_buffer: bool,
    /// Overhead-measurement mode: the scheduler grants every request
    /// immediately at full card bandwidth (§5.1's baseline scheduler).
    pub allow_all: bool,
}

impl IorConfig {
    /// A config with the default scaling (2,000× — a 1,000-second Vesta
    /// run takes half a real second).
    #[must_use]
    pub fn new(platform: Platform, apps: Vec<AppSpec>) -> Self {
        Self {
            platform,
            apps,
            speedup: 2_000.0,
            use_burst_buffer: false,
            allow_all: false,
        }
    }
}

/// Result of one harness run.
#[derive(Debug, Clone)]
pub struct IorOutcome {
    /// SysEfficiency / Dilation / per-application outcomes.
    pub report: ObjectiveReport,
    /// Real wall-clock duration of the run.
    pub wall: Duration,
    /// Scheduler-thread counters.
    pub stats: SchedulerStats,
}

/// Run the modified-IOR experiment with `policy` arbitrating I/O.
pub fn run_ior(
    config: &IorConfig,
    policy: &mut dyn OnlinePolicy,
) -> Result<IorOutcome, ModelError> {
    validate_scenario(&config.platform, &config.apps)?;
    if config.use_burst_buffer && config.platform.burst_buffer.is_none() {
        return Err(ModelError::InvalidPlatform(
            "use_burst_buffer requires a platform burst buffer".into(),
        ));
    }
    let started = Instant::now();
    let clock = SimClock::start(config.speedup);
    let (to_sched, sched_rx) = unbounded::<ToScheduler>();
    let mut complete_txs = Vec::with_capacity(config.apps.len());
    let mut complete_rxs = Vec::with_capacity(config.apps.len());
    for _ in &config.apps {
        let (tx, rx) = unbounded::<ToApp>();
        complete_txs.push(tx);
        complete_rxs.push(rx);
    }

    let scheduler = Scheduler::new(
        &config.platform,
        &config.apps,
        clock,
        config.use_burst_buffer,
        config.allow_all,
    );

    let (progress, stats) = std::thread::scope(|scope| {
        for (spec, rx) in config.apps.iter().zip(complete_rxs) {
            let to_sched = to_sched.clone();
            scope.spawn(move || run_app(spec, clock, &to_sched, &rx));
        }
        drop(to_sched); // the scheduler's recv disconnects once all apps exit
        scheduler.run(&sched_rx, &complete_txs, policy)
    });

    let per_app: Vec<AppOutcome> = progress
        .iter()
        .map(|p| {
            let d = p.finish_time().unwrap_or_else(|| clock.now()); // defensive: unfinished app
            AppOutcome {
                id: p.id(),
                procs: p.procs(),
                release: p.release(),
                finish: d,
                rho: p.rho(d),
                rho_tilde: p.rho_tilde(d),
            }
        })
        .collect();

    Ok(IorOutcome {
        report: ObjectiveReport::from_outcomes(per_app),
        wall: started.elapsed(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_core::heuristics::{MaxSysEff, MinDilation, Priority, RoundRobin};
    use iosched_model::{Bytes, Time};

    fn vesta_like() -> Platform {
        Platform::vesta()
    }

    /// Small scenario: 2 groups, 3 iterations, I/O ≈ 30 % of compute.
    fn small_apps() -> Vec<AppSpec> {
        vec![
            AppSpec::periodic(0, Time::ZERO, 256, Time::secs(20.0), Bytes::gib(60.0), 3),
            AppSpec::periodic(1, Time::ZERO, 512, Time::secs(20.0), Bytes::gib(60.0), 3),
        ]
    }

    fn fast_config(apps: Vec<AppSpec>) -> IorConfig {
        let mut c = IorConfig::new(vesta_like(), apps);
        c.speedup = 4_000.0;
        c
    }

    #[test]
    fn harness_runs_to_completion() {
        let cfg = fast_config(small_apps());
        let out = run_ior(&cfg, &mut RoundRobin).unwrap();
        assert_eq!(out.report.per_app.len(), 2);
        for o in &out.report.per_app {
            assert!(o.rho_tilde > 0.0, "{}: no progress", o.id);
            assert!(o.rho_tilde <= o.rho + 1e-9);
        }
        assert!(out.report.dilation >= 1.0);
        assert_eq!(out.stats.completions, 6);
        assert_eq!(out.stats.requests, 6);
    }

    #[test]
    fn dedicated_app_is_barely_dilated() {
        let apps = vec![AppSpec::periodic(
            0,
            Time::ZERO,
            256,
            Time::secs(20.0),
            Bytes::gib(60.0),
            3,
        )];
        let mut cfg = fast_config(apps);
        // Coarser scale: real sleeps of tens of ms dwarf scheduler noise
        // even when the whole workspace test suite runs in parallel.
        cfg.speedup = 1_000.0;
        let out = run_ior(&cfg, &mut MaxSysEff).unwrap();
        // Alone on the machine: dilation ≈ 1 (plus protocol overhead).
        assert!(
            out.report.dilation < 1.3,
            "dedicated run dilation {} too high",
            out.report.dilation
        );
    }

    #[test]
    fn priority_variant_runs_too() {
        let cfg = fast_config(small_apps());
        let out = run_ior(&cfg, &mut Priority::new(MinDilation)).unwrap();
        assert_eq!(out.stats.completions, 6);
    }

    #[test]
    fn burst_buffer_mode_requires_spec() {
        let mut cfg = fast_config(small_apps());
        cfg.use_burst_buffer = true;
        assert!(run_ior(&cfg, &mut RoundRobin).is_err());
        cfg.platform = cfg.platform.with_default_burst_buffer();
        let out = run_ior(&cfg, &mut RoundRobin).unwrap();
        assert_eq!(out.stats.completions, 6);
    }

    #[test]
    fn invalid_scenarios_are_rejected() {
        let apps = vec![AppSpec::periodic(
            0,
            Time::ZERO,
            5_000, // > Vesta's 2,048 nodes
            Time::secs(1.0),
            Bytes::gib(1.0),
            1,
        )];
        let cfg = fast_config(apps);
        assert!(run_ior(&cfg, &mut RoundRobin).is_err());
    }
}
