//! Property tests for the scheduling core: every policy's allocation
//! always satisfies the §2.1 capacity rules, the Priority wrapper is a
//! stable partition of its inner order, the bandwidth profile never
//! overcommits, and random 3-Partition instances round-trip.

use iosched_core::heuristics::PolicyKind;
use iosched_core::periodic::BandwidthProfile;
use iosched_core::policy::{AppState, OnlinePolicy, SchedContext};
use iosched_core::three_partition::ThreePartition;
use iosched_model::{AppId, Bw, Time};
use proptest::prelude::*;

fn arb_app_state(id: usize) -> impl Strategy<Value = AppState> {
    (
        1u64..5_000,
        0.0f64..1.0,
        0.0f64..5_000.0,
        0.0f64..1_000.0,
        0.0f64..1_000.0,
        any::<bool>(),
        0.1f64..64.0,
    )
        .prop_map(
            move |(procs, ratio, key, last, req, started, max_bw)| AppState {
                id: AppId(id),
                procs,
                dilation_ratio: ratio,
                syseff_key: key,
                last_io_end: Time::secs(last),
                io_requested_at: Time::secs(req),
                started_io: started,
                max_bw: Bw::gib_per_sec(max_bw),
            },
        )
}

fn arb_pending() -> impl Strategy<Value = Vec<AppState>> {
    (1usize..20).prop_flat_map(|n| (0..n).map(arb_app_state).collect::<Vec<_>>())
}

proptest! {
    /// Every roster policy produces a valid allocation on any context and
    /// saturates the PFS whenever demand allows (work conservation).
    #[test]
    fn policies_allocate_validly_and_work_conserving(
        pending in arb_pending(),
        total in 1.0f64..256.0,
    ) {
        let ctx = SchedContext {
            now: Time::secs(1_000.0),
            total_bw: Bw::gib_per_sec(total),
            pending: &pending,
            signal: None,
        };
        let demand: f64 = pending.iter().map(|a| a.max_bw.as_gib_per_sec()).sum();
        for kind in PolicyKind::fig6_roster() {
            let mut policy = kind.build();
            let alloc = policy.allocate(&ctx);
            alloc.validate(&ctx).map_err(TestCaseError::fail)?;
            // Work conservation: granted total = min(demand, B).
            let granted = alloc.total().as_gib_per_sec();
            let expected = demand.min(total);
            prop_assert!(
                (granted - expected).abs() <= 1e-6 * expected.max(1.0),
                "{}: granted {granted} vs min(demand, B) = {expected}",
                kind.name()
            );
        }
    }

    /// `order` is always a permutation of the pending indices.
    #[test]
    fn orders_are_permutations(pending in arb_pending()) {
        let ctx = SchedContext {
            now: Time::secs(10.0),
            total_bw: Bw::gib_per_sec(10.0),
            pending: &pending,
            signal: None,
        };
        for kind in PolicyKind::fig6_roster() {
            let mut policy = kind.build();
            let mut order = policy.order(&ctx);
            order.sort_unstable();
            let expected: Vec<usize> = (0..pending.len()).collect();
            prop_assert_eq!(order, expected, "{} broke the permutation", kind.name());
        }
    }

    /// Priority is a stable partition: started apps keep the inner
    /// relative order, and all of them precede all fresh apps.
    #[test]
    fn priority_is_a_stable_partition(pending in arb_pending()) {
        use iosched_core::heuristics::{MinDilation, Priority};
        let ctx = SchedContext {
            now: Time::secs(10.0),
            total_bw: Bw::gib_per_sec(10.0),
            pending: &pending,
            signal: None,
        };
        let inner_order = MinDilation.order(&ctx);
        let prio_order = Priority::new(MinDilation).order(&ctx);
        // Partition point: all started first.
        let first_fresh = prio_order
            .iter()
            .position(|&i| !pending[i].started_io)
            .unwrap_or(prio_order.len());
        prop_assert!(prio_order[first_fresh..].iter().all(|&i| !pending[i].started_io));
        // Stability: relative inner order preserved within each group.
        let rank = |i: usize| inner_order.iter().position(|&x| x == i).unwrap();
        for grp in [&prio_order[..first_fresh], &prio_order[first_fresh..]] {
            for w in grp.windows(2) {
                prop_assert!(rank(w[0]) < rank(w[1]));
            }
        }
    }

    /// The bandwidth profile never admits an overcommitting reservation
    /// and `first_fit` results are always actually feasible.
    #[test]
    fn profile_first_fit_is_sound(
        reservations in prop::collection::vec(
            (0.0f64..90.0, 0.1f64..30.0, 0.1f64..6.0), 0..12),
        query in (0.0f64..100.0, 0.1f64..40.0, 0.1f64..10.0),
    ) {
        let mut profile = BandwidthProfile::new(Time::secs(100.0), Bw::gib_per_sec(10.0));
        for (start, dur, bw) in reservations {
            let end = (start + dur).min(100.0);
            if end > start {
                // Reservation may legitimately fail; never panic.
                let _ = profile.reserve(
                    Time::secs(start),
                    Time::secs(end),
                    Bw::gib_per_sec(bw),
                );
            }
        }
        let (from, dur, bw) = query;
        if let Some(s) = profile.first_fit(
            Time::secs(from),
            Time::secs(dur),
            Bw::gib_per_sec(bw),
        ) {
            prop_assert!(s.approx_ge(Time::secs(from)));
            prop_assert!((s + Time::secs(dur)).approx_le(Time::secs(100.0)));
            let min = profile.min_available(s, s + Time::secs(dur));
            prop_assert!(
                min.approx_ge(Bw::gib_per_sec(bw)),
                "window at {s} has only {min}"
            );
        }
    }

    /// Random feasible 3-Partition instances (built from a known
    /// partition) are solved by brute force, and the proof schedule
    /// round-trips to a valid certificate.
    #[test]
    fn three_partition_roundtrip(
        triples in prop::collection::vec((1u64..30, 1u64..30), 2..5),
    ) {
        // Build n triplets with a common sum: (a, b, B−a−b) for B chosen
        // larger than every a+b.
        let target = triples.iter().map(|&(a, b)| a + b).max().unwrap() + 5;
        let mut items = Vec::new();
        for &(a, b) in &triples {
            items.extend([a, b, target - a - b]);
        }
        let instance = ThreePartition::new(target, items).unwrap();
        let solution = instance.brute_force().expect("constructed feasible");
        let schedule = instance.schedule_from_partition(&solution);
        prop_assert_eq!(schedule.verify().unwrap(), 1.0);
        let recovered = schedule.extract_partition().expect("valid schedule");
        for t in &recovered {
            let sum: u64 = t.iter().map(|&k| instance.items()[k]).sum();
            prop_assert_eq!(sum, instance.target());
        }
    }

    /// Full-roster name discipline under random knobs: every registry
    /// member — the complete roster plus randomly tuned `minmax`,
    /// `periodic:*` and `control:*` members — roundtrips
    /// parse ↔ name ↔ serde exactly.
    #[test]
    fn registry_names_roundtrip_under_random_knobs(
        gamma in 0.0f64..1.0,
        kp in 0.0f64..4.0,
        ki in 0.0f64..1.0,
        set in 0.05f64..1.0,
        win in 1.0f64..600.0,
        eps in 0.01f64..0.8,
        tmax in 1.0f64..8.0,
    ) {
        use iosched_core::heuristics::BasePolicy;
        use iosched_core::periodic::InsertionHeuristic;
        use iosched_core::registry::{ControlFactory, PeriodicFactory, PolicyFactory};

        let mut roster = PolicyFactory::complete_roster();
        roster.push(PolicyFactory::Kind(PolicyKind::plain(BasePolicy::MinMax(gamma))));
        roster.push(PolicyFactory::Periodic(
            PeriodicFactory::new(InsertionHeuristic::Congestion)
                .with_epsilon(eps)
                .with_max_factor(tmax),
        ));
        roster.push(PolicyFactory::Control(
            ControlFactory::default()
                .with_kp(kp)
                .with_ki(ki)
                .with_setpoint(set)
                .with_window(win),
        ));
        for spec in roster {
            // parse ↔ serde_name (the canonical machine-readable form).
            let name = spec.serde_name();
            let parsed = PolicyFactory::parse(&name).map_err(TestCaseError::fail)?;
            prop_assert_eq!(parsed, spec, "parse(serde_name()) diverged for {}", name);
            // serde is the name string, and it roundtrips bit-exactly.
            let json = serde_json::to_string(&spec).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&json, &format!("\"{}\"", name));
            let back: PolicyFactory = serde_json::from_str(&json)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(back, spec, "serde roundtrip diverged for {}", json);
            // Whatever parses also validates (the grammar and the
            // builder agree on legal knobs).
            prop_assert!(spec.validate().is_ok(), "{} failed validation", name);
        }
    }

    /// Malformed control gains never parse: the grammar rejects any
    /// negative gain, out-of-range setpoint or non-positive window with
    /// an actionable error (never a panic).
    #[test]
    fn malformed_control_gains_are_rejected(
        kp in -10.0f64..-0.001,
        set in 1.001f64..100.0,
        win in -100.0f64..0.0,
    ) {
        use iosched_core::registry::PolicyFactory;
        for bad in [
            format!("control:pi:kp={kp}"),
            format!("control:pi:set={set}"),
            format!("control:pi:set={}", -set),
            format!("control:pi:win={win}"),
            "control:pi:set=0".to_string(),
            "control:pi:win=0".to_string(),
        ] {
            let err = PolicyFactory::parse(&bad);
            prop_assert!(err.is_err(), "{} should not parse", bad);
            prop_assert!(!err.unwrap_err().is_empty());
        }
    }
}
