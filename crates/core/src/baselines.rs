//! The uncoordinated baseline schedulers the paper compares against.
//!
//! These live in `iosched_core` (rather than the `iosched-baselines`
//! facade crate, which re-exports them) so the scenario-aware policy
//! registry ([`crate::registry::PolicyFactory`]) can instantiate the
//! *entire* roster — §3.1 heuristics, baselines and §3.2 periodic
//! timetables — from one place.
//!
//! * [`FairShare`] — max–min fair bandwidth sharing: the fluid
//!   idealization of a parallel file system with no global scheduler
//!   (every application streams at once — the regime where the Fig. 1
//!   disk-locality interference penalty bites hardest).
//! * [`Fcfs`] — strict first-come-first-served: the oldest outstanding
//!   I/O request owns the PFS (§1 cites this as the simplest policy used
//!   by server-side HPC I/O schedulers).

use crate::policy::{
    greedy_allocate_into, order_by_key_asc, order_into_by_key_asc, AllocScratch, Allocation,
    OnlinePolicy, SchedContext,
};
use iosched_model::Bw;

/// Uncoordinated concurrent access with max–min fairness.
///
/// Every application that wants I/O transfers concurrently; the PFS
/// bandwidth is split by progressive water-filling: applications whose
/// card limit `β·b` is below the equal share keep their limit, the
/// leftover is redistributed among the rest.
#[derive(Debug, Clone, Copy, Default)]
pub struct FairShare;

impl OnlinePolicy for FairShare {
    fn name(&self) -> String {
        "fairshare".into()
    }

    fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
        // Order is irrelevant for a policy that serves everyone; return
        // id order for determinism (used only if someone wraps us).
        (0..ctx.pending.len()).collect()
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> Allocation {
        let n = ctx.pending.len();
        if n == 0 {
            return Allocation::empty();
        }
        // Progressive filling: satisfy the most-constrained demands first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            ctx.pending[a]
                .max_bw
                .get()
                .total_cmp(&ctx.pending[b].max_bw.get())
                .then_with(|| ctx.pending[a].id.cmp(&ctx.pending[b].id))
        });
        let mut remaining = ctx.total_bw;
        let mut left = n;
        let mut grants = Vec::with_capacity(n);
        for &i in &order {
            let fair = remaining / left as f64;
            let bw = ctx.pending[i].max_bw.min(fair);
            if bw.get() > 0.0 {
                grants.push((ctx.pending[i].id, bw));
            }
            remaining = (remaining - bw).max(Bw::ZERO);
            left -= 1;
        }
        grants.sort_by_key(|(id, _)| *id);
        Allocation { grants }
    }

    fn allocate_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        // The water-filling pass of `allocate`, reusing the scratch
        // buffers: the same arithmetic on the same values in the same
        // order, so both entry points are bit-identical.
        let n = ctx.pending.len();
        scratch.alloc.grants.clear();
        if n == 0 {
            return;
        }
        order_into_by_key_asc(ctx, scratch, |a| a.max_bw.get());
        let grants = &mut scratch.alloc.grants;
        let mut remaining = ctx.total_bw;
        let mut left = n;
        for &i in &scratch.order {
            let fair = remaining / left as f64;
            let bw = ctx.pending[i].max_bw.min(fair);
            if bw.get() > 0.0 {
                grants.push((ctx.pending[i].id, bw));
            }
            remaining = (remaining - bw).max(Bw::ZERO);
            left -= 1;
        }
        grants.sort_unstable_by_key(|&(id, _)| id);
    }
}

/// Oldest-request-first baseline (leftover card capacity cascades to the
/// next-oldest, as in the shared greedy grant loop).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl OnlinePolicy for Fcfs {
    fn name(&self) -> String {
        "fcfs".into()
    }

    fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
        order_by_key_asc(ctx, |a| a.io_requested_at.as_secs())
    }

    fn order_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        order_into_by_key_asc(ctx, scratch, |a| a.io_requested_at.as_secs());
    }

    fn allocate_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        self.order_into(ctx, scratch);
        greedy_allocate_into(ctx, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::{app, ctx};
    use iosched_model::{AppId, Time};

    #[test]
    fn equal_demands_split_equally() {
        let pending = [app(0, 10.0), app(1, 10.0), app(2, 10.0), app(3, 10.0)];
        let c = ctx(10.0, &pending);
        let alloc = FairShare.allocate(&c);
        alloc.validate(&c).unwrap();
        for i in 0..4 {
            assert!(
                alloc.granted(AppId(i)).approx_eq(Bw::gib_per_sec(2.5)),
                "app {i} got {}",
                alloc.granted(AppId(i))
            );
        }
    }

    #[test]
    fn small_demand_frees_bandwidth_for_big_ones() {
        // One app capped at 1 GiB/s, two at 10: water-filling gives
        // 1 + 4.5 + 4.5.
        let pending = [app(0, 1.0), app(1, 10.0), app(2, 10.0)];
        let c = ctx(10.0, &pending);
        let alloc = FairShare.allocate(&c);
        alloc.validate(&c).unwrap();
        assert!(alloc.granted(AppId(0)).approx_eq(Bw::gib_per_sec(1.0)));
        assert!(alloc.granted(AppId(1)).approx_eq(Bw::gib_per_sec(4.5)));
        assert!(alloc.granted(AppId(2)).approx_eq(Bw::gib_per_sec(4.5)));
    }

    #[test]
    fn undersubscribed_system_gives_everyone_their_cap() {
        let pending = [app(0, 2.0), app(1, 3.0)];
        let c = ctx(10.0, &pending);
        let alloc = FairShare.allocate(&c);
        assert!(alloc.granted(AppId(0)).approx_eq(Bw::gib_per_sec(2.0)));
        assert!(alloc.granted(AppId(1)).approx_eq(Bw::gib_per_sec(3.0)));
    }

    #[test]
    fn empty_pending_grants_nothing() {
        let pending: [crate::policy::AppState; 0] = [];
        let c = ctx(10.0, &pending);
        assert!(FairShare.allocate(&c).grants.is_empty());
    }

    #[test]
    fn everyone_gets_something_under_congestion() {
        let pending: Vec<_> = (0..7).map(|i| app(i, 10.0)).collect();
        let c = ctx(10.0, &pending);
        let alloc = FairShare.allocate(&c);
        alloc.validate(&c).unwrap();
        for i in 0..7 {
            assert!(alloc.granted(AppId(i)).get() > 0.0, "app {i} starved");
        }
        assert!(alloc.total().approx_eq(c.total_bw));
    }

    #[test]
    fn oldest_request_owns_the_disk() {
        let mut a0 = app(0, 10.0);
        a0.io_requested_at = Time::secs(20.0);
        let mut a1 = app(1, 10.0);
        a1.io_requested_at = Time::secs(5.0);
        let pending = [a0, a1];
        let c = ctx(10.0, &pending);
        let alloc = Fcfs.allocate(&c);
        assert!(alloc.granted(AppId(1)).approx_eq(c.total_bw));
        assert!(alloc.granted(AppId(0)).is_zero());
    }

    #[test]
    fn leftover_cascades_to_next_oldest() {
        let mut a0 = app(0, 4.0);
        a0.io_requested_at = Time::secs(1.0);
        let mut a1 = app(1, 4.0);
        a1.io_requested_at = Time::secs(2.0);
        let mut a2 = app(2, 4.0);
        a2.io_requested_at = Time::secs(3.0);
        let pending = [a0, a1, a2];
        let c = ctx(10.0, &pending);
        let alloc = Fcfs.allocate(&c);
        assert!(alloc.granted(AppId(0)).approx_eq(Bw::gib_per_sec(4.0)));
        assert!(alloc.granted(AppId(1)).approx_eq(Bw::gib_per_sec(4.0)));
        assert!(alloc.granted(AppId(2)).approx_eq(Bw::gib_per_sec(2.0)));
    }

    #[test]
    fn fcfs_ties_break_by_id() {
        let pending = [app(1, 10.0), app(0, 10.0)];
        let c = ctx(10.0, &pending);
        let alloc = Fcfs.allocate(&c);
        assert!(alloc.granted(AppId(0)).approx_eq(c.total_bw));
    }
}
