//! The online heuristics of §3.1.
//!
//! All four strategies share the same skeleton: order the pending
//! applications by a strategy-specific key, then run the greedy grant loop
//! ([`crate::policy::greedy_allocate`]). The [`Priority`] wrapper composes
//! with any of them, moving applications that already started their current
//! I/O to the front of the order (disk locality on spinning disks —
//! "solid-state drives do not present the problem", §3.1).

mod factory;
mod max_syseff;
mod min_dilation;
mod min_max;
mod priority;
mod round_robin;

pub use factory::{standard_policies, BasePolicy, PolicyKind};
pub use max_syseff::MaxSysEff;
pub use min_dilation::MinDilation;
pub use min_max::MinMax;
pub use priority::Priority;
pub use round_robin::RoundRobin;
