//! The Priority variant of §3.1.
//!
//! "the scheduler always chooses applications that already started
//! performing their I/O before favoring any other application. The rationale
//! behind this is that there may be an additional cost incurred by
//! restarting the I/O of an application after an interruption, due to
//! breaking disk locality."
//!
//! `Priority<P>` composes with any inner policy `P`: applications with
//! `started_io == true` are ordered first (using `P`'s order among
//! themselves), the rest follow, also in `P`'s order.

use crate::policy::{greedy_allocate_into, AllocScratch, OnlinePolicy, SchedContext};

/// Never interrupt an application that already started its current I/O.
#[derive(Debug, Clone, Copy, Default)]
pub struct Priority<P> {
    inner: P,
}

impl<P: OnlinePolicy> Priority<P> {
    /// Wrap `inner` with the Priority constraint.
    #[must_use]
    pub fn new(inner: P) -> Self {
        Self { inner }
    }

    /// Access the wrapped policy.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: OnlinePolicy> OnlinePolicy for Priority<P> {
    fn name(&self) -> String {
        format!("priority-{}", self.inner.name())
    }

    fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
        // Stable partition of the inner policy's order: applications that
        // already started their I/O first, both groups keeping the inner
        // policy's relative preferences.
        let inner_order = self.inner.order(ctx);
        let (started, fresh): (Vec<usize>, Vec<usize>) = inner_order
            .into_iter()
            .partition(|&i| ctx.pending[i].started_io);
        let mut order = started;
        order.extend(fresh);
        order
    }

    fn order_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        self.inner.order_into(ctx, scratch);
        // Stable in-place partition of the inner order by `started_io`:
        // started entries are compacted to the front (the write cursor
        // never overtakes the read cursor), the rest are staged in `tmp`
        // and appended — both groups keep the inner policy's relative
        // preferences, exactly like the allocating `partition` above.
        scratch.tmp.clear();
        let mut w = 0;
        for r in 0..scratch.order.len() {
            let i = scratch.order[r];
            if ctx.pending[i].started_io {
                scratch.order[w] = i;
                w += 1;
            } else {
                scratch.tmp.push(i);
            }
        }
        scratch.order.truncate(w);
        scratch.order.extend_from_slice(&scratch.tmp);
    }

    fn allocate_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        self.order_into(ctx, scratch);
        greedy_allocate_into(ctx, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{MaxSysEff, MinDilation};
    use crate::policy::test_support::{app, ctx};
    use iosched_model::AppId;

    #[test]
    fn in_flight_transfer_is_never_preempted() {
        let mut a0 = app(0, 10.0);
        a0.dilation_ratio = 0.9; // inner policy would stall it…
        a0.started_io = true; // …but it already started its I/O.
        let mut a1 = app(1, 10.0);
        a1.dilation_ratio = 0.1;
        let pending = [a0, a1];
        let c = ctx(10.0, &pending);

        let plain = MinDilation.allocate(&c);
        assert!(plain.granted(AppId(1)).approx_eq(c.total_bw));

        let prio = Priority::new(MinDilation).allocate(&c);
        assert!(prio.granted(AppId(0)).approx_eq(c.total_bw));
        assert!(prio.granted(AppId(1)).is_zero());
    }

    #[test]
    fn within_groups_inner_order_applies() {
        let mut a0 = app(0, 4.0);
        a0.started_io = true;
        a0.syseff_key = 10.0;
        let mut a1 = app(1, 4.0);
        a1.started_io = true;
        a1.syseff_key = 100.0; // preferred by MaxSysEff (descending key)
        let mut a2 = app(2, 4.0);
        a2.syseff_key = 500.0; // best key but has not started
        let pending = [a0, a1, a2];
        let c = ctx(10.0, &pending);
        let alloc = Priority::new(MaxSysEff).allocate(&c);
        // Started apps soak 8 GiB/s (a1 before a0 — inner order), the
        // newcomer gets the remaining 2 despite its top key.
        assert!(alloc
            .granted(AppId(1))
            .approx_eq(iosched_model::Bw::gib_per_sec(4.0)));
        assert!(alloc
            .granted(AppId(0))
            .approx_eq(iosched_model::Bw::gib_per_sec(4.0)));
        assert!(alloc
            .granted(AppId(2))
            .approx_eq(iosched_model::Bw::gib_per_sec(2.0)));
    }

    #[test]
    fn without_started_apps_matches_inner_policy() {
        let mut a0 = app(0, 10.0);
        a0.syseff_key = 1.0;
        let mut a1 = app(1, 10.0);
        a1.syseff_key = 5.0;
        let pending = [a0, a1];
        let c = ctx(10.0, &pending);
        assert_eq!(
            Priority::new(MaxSysEff).allocate(&c),
            MaxSysEff.allocate(&c)
        );
    }

    #[test]
    fn name_is_prefixed() {
        assert_eq!(Priority::new(MinDilation).name(), "priority-mindilation");
    }
}
