//! The RoundRobin scheduler — the comparison baseline of §3.1.
//!
//! "The general idea of scheduling applications is first-come first-served
//! (FCFS) with an additional constraint to ensure fairness. […] the
//! application that finished the I/O transfer of its last instance the
//! longest time ago is favored."

use crate::policy::{
    greedy_allocate_into, order_by_key_asc, order_into_by_key_asc, AllocScratch, OnlinePolicy,
    SchedContext,
};

/// FCFS with fairness: least-recently-served application first.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl OnlinePolicy for RoundRobin {
    fn name(&self) -> String {
        "roundrobin".into()
    }

    fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
        // Oldest last-I/O-completion first; apps that never performed I/O
        // carry their release time, so long-waiting newcomers win too.
        order_by_key_asc(ctx, |a| a.last_io_end.as_secs())
    }

    fn order_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        order_into_by_key_asc(ctx, scratch, |a| a.last_io_end.as_secs());
    }

    fn allocate_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        self.order_into(ctx, scratch);
        greedy_allocate_into(ctx, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::{app, ctx};
    use iosched_model::{AppId, Time};

    #[test]
    fn least_recently_served_wins() {
        let mut a0 = app(0, 10.0);
        a0.last_io_end = Time::secs(50.0);
        let mut a1 = app(1, 10.0);
        a1.last_io_end = Time::secs(10.0); // served longest ago
        let pending = [a0, a1];
        let c = ctx(10.0, &pending);
        let alloc = RoundRobin.allocate(&c);
        assert!(alloc.granted(AppId(1)).approx_eq(c.total_bw));
        assert!(alloc.granted(AppId(0)).is_zero());
    }

    #[test]
    fn no_congestion_serves_everyone() {
        let mut a0 = app(0, 3.0);
        a0.last_io_end = Time::secs(1.0);
        let mut a1 = app(1, 3.0);
        a1.last_io_end = Time::secs(2.0);
        let pending = [a0, a1];
        let c = ctx(10.0, &pending);
        let alloc = RoundRobin.allocate(&c);
        // Both fit within B: both run at full card speed.
        assert!(alloc.granted(AppId(0)).as_gib_per_sec() > 2.9);
        assert!(alloc.granted(AppId(1)).as_gib_per_sec() > 2.9);
    }

    #[test]
    fn tie_broken_by_id() {
        let pending = [app(1, 10.0), app(0, 10.0)];
        let c = ctx(10.0, &pending);
        let alloc = RoundRobin.allocate(&c);
        assert!(alloc.granted(AppId(0)).approx_eq(c.total_bw));
    }
}
