//! The MaxSysEff scheduler of §3.1 — the CPU-oriented strategy that chases
//! the SysEfficiency objective `(1/N)Σ β(k)ρ̃(k)`.
//!
//! We order pending applications by **descending** `β(k)·ρ̃(k)(t)`: every
//! second application `k` spends stalled wastes `β(k)` processor-seconds
//! weighted by the efficiency it was sustaining, so the largest
//! weighted-progress applications are unblocked first. This matches the
//! paper's description of the objective ("priority to compute-intensive
//! applications with large w and small vol_io" — those have the highest
//! ρ̃) and its measured behaviour: Fig. 16 shows MaxSysEff *lowering* the
//! big applications' dilation by ~48 % while the small ones wait, and
//! Tables 1–2 show the highest SysEfficiency together with the worst
//! Dilation.
//!
//! Deviation note (also in DESIGN.md): the research report's §3.1 phrasing
//! says "low values of β(k)ρ̃(k)(t)", but that ordering starves exactly the
//! applications that dominate the weighted objective and contradicts the
//! Fig. 16 per-application measurements; we implement the reading
//! consistent with the reported results.

use crate::policy::{
    greedy_allocate_into, order_by_key_asc, order_into_by_key_asc, AllocScratch, OnlinePolicy,
    SchedContext,
};

/// Serve applications with the highest `β·ρ̃` first.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxSysEff;

impl OnlinePolicy for MaxSysEff {
    fn name(&self) -> String {
        "maxsyseff".into()
    }

    fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
        order_by_key_asc(ctx, |a| -a.syseff_key)
    }

    fn order_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        order_into_by_key_asc(ctx, scratch, |a| -a.syseff_key);
    }

    fn allocate_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        self.order_into(ctx, scratch);
        greedy_allocate_into(ctx, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::{app, ctx};
    use iosched_model::AppId;

    #[test]
    fn highest_weighted_progress_wins() {
        let mut a0 = app(0, 10.0);
        a0.syseff_key = 500.0; // big application, high weighted progress
        let mut a1 = app(1, 10.0);
        a1.syseff_key = 20.0;
        let pending = [a0, a1];
        let c = ctx(10.0, &pending);
        let alloc = MaxSysEff.allocate(&c);
        assert!(alloc.granted(AppId(0)).approx_eq(c.total_bw));
        assert!(alloc.granted(AppId(1)).is_zero());
    }

    #[test]
    fn leftover_bandwidth_cascades_down_the_key_order() {
        let mut a0 = app(0, 4.0);
        a0.syseff_key = 10.0;
        let mut a1 = app(1, 4.0);
        a1.syseff_key = 300.0;
        let mut a2 = app(2, 4.0);
        a2.syseff_key = 100.0;
        let pending = [a0, a1, a2];
        let c = ctx(10.0, &pending);
        let alloc = MaxSysEff.allocate(&c);
        // Order: a1 (300), a2 (100), a0 (10) → 4 + 4 + 2.
        assert!(alloc
            .granted(AppId(1))
            .approx_eq(iosched_model::Bw::gib_per_sec(4.0)));
        assert!(alloc
            .granted(AppId(2))
            .approx_eq(iosched_model::Bw::gib_per_sec(4.0)));
        assert!(alloc
            .granted(AppId(0))
            .approx_eq(iosched_model::Bw::gib_per_sec(2.0)));
    }

    #[test]
    fn deterministic_on_equal_keys() {
        let pending = [app(3, 10.0), app(1, 10.0), app(2, 10.0)];
        let c = ctx(10.0, &pending);
        let a = MaxSysEff.allocate(&c);
        let b = MaxSysEff.allocate(&c);
        assert_eq!(a, b);
        assert!(a.granted(AppId(1)).approx_eq(c.total_bw));
    }
}
