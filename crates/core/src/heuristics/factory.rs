//! Policy construction by name — the experiment runners sweep over the
//! same fixed roster of heuristics the paper evaluates (Fig. 6: RoundRobin,
//! MinDilation, MaxSysEff, MinMax-γ, each with and without Priority).

use super::{MaxSysEff, MinDilation, MinMax, Priority, RoundRobin};
use crate::policy::OnlinePolicy;
use serde::{Deserialize, Serialize};

/// Base strategy (without the Priority constraint).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BasePolicy {
    /// FCFS + fairness baseline.
    RoundRobin,
    /// Dilation-oriented heuristic.
    MinDilation,
    /// SysEfficiency-oriented heuristic.
    MaxSysEff,
    /// Threshold trade-off with parameter γ.
    MinMax(f64),
}

/// Enumerable description of a policy (serializable — used as experiment
/// configuration and report keys).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyKind {
    /// The underlying strategy.
    pub base: BasePolicy,
    /// Whether the disk-locality Priority constraint wraps it.
    pub priority: bool,
}

impl PolicyKind {
    /// Plain (non-Priority) policy.
    #[must_use]
    pub fn plain(base: BasePolicy) -> Self {
        Self {
            base,
            priority: false,
        }
    }

    /// Priority variant.
    #[must_use]
    pub fn with_priority(base: BasePolicy) -> Self {
        Self {
            base,
            priority: true,
        }
    }

    /// All eight policies of Fig. 6 with the paper's γ = 0.5.
    #[must_use]
    pub fn fig6_roster() -> Vec<PolicyKind> {
        let bases = [
            BasePolicy::RoundRobin,
            BasePolicy::MinDilation,
            BasePolicy::MaxSysEff,
            BasePolicy::MinMax(0.5),
        ];
        bases
            .iter()
            .flat_map(|&b| [Self::plain(b), Self::with_priority(b)])
            .collect()
    }

    /// The Tables 1–2 roster: MaxSysEff, MinMax-{0.25, 0.5, 0.75},
    /// MinDilation — plain and Priority variants (10 policies).
    #[must_use]
    pub fn tables_roster() -> Vec<PolicyKind> {
        let bases = [
            BasePolicy::MaxSysEff,
            BasePolicy::MinMax(0.25),
            BasePolicy::MinMax(0.5),
            BasePolicy::MinMax(0.75),
            BasePolicy::MinDilation,
        ];
        bases
            .iter()
            .flat_map(|&b| [Self::plain(b), Self::with_priority(b)])
            .collect()
    }

    /// Instantiate the policy.
    #[must_use]
    pub fn build(&self) -> Box<dyn OnlinePolicy> {
        match (self.priority, self.base) {
            (false, BasePolicy::RoundRobin) => Box::new(RoundRobin),
            (false, BasePolicy::MinDilation) => Box::new(MinDilation),
            (false, BasePolicy::MaxSysEff) => Box::new(MaxSysEff),
            (false, BasePolicy::MinMax(g)) => Box::new(MinMax::new(g)),
            (true, BasePolicy::RoundRobin) => Box::new(Priority::new(RoundRobin)),
            (true, BasePolicy::MinDilation) => Box::new(Priority::new(MinDilation)),
            (true, BasePolicy::MaxSysEff) => Box::new(Priority::new(MaxSysEff)),
            (true, BasePolicy::MinMax(g)) => Box::new(Priority::new(MinMax::new(g))),
        }
    }

    /// The report name of the built policy (same as `build().name()`).
    #[must_use]
    pub fn name(&self) -> String {
        self.build().name()
    }
}

/// The paper's standard roster, instantiated (order of Fig. 6's legend).
#[must_use]
pub fn standard_policies() -> Vec<Box<dyn OnlinePolicy>> {
    PolicyKind::fig6_roster()
        .iter()
        .map(PolicyKind::build)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_eight_distinctly_named_policies() {
        let names: Vec<String> = standard_policies().iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 8);
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "duplicate policy names: {names:?}");
        assert!(names.contains(&"roundrobin".to_string()));
        assert!(names.contains(&"priority-minmax-0.50".to_string()));
    }

    #[test]
    fn tables_roster_matches_tables_1_and_2() {
        let kinds = PolicyKind::tables_roster();
        assert_eq!(kinds.len(), 10);
        let names: Vec<String> = kinds.iter().map(PolicyKind::name).collect();
        assert!(names.contains(&"maxsyseff".to_string()));
        assert!(names.contains(&"priority-minmax-0.75".to_string()));
        assert!(names.contains(&"priority-mindilation".to_string()));
    }

    #[test]
    fn build_matches_kind_name() {
        for kind in PolicyKind::fig6_roster() {
            assert_eq!(kind.name(), kind.build().name());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let k = PolicyKind::with_priority(BasePolicy::MinMax(0.25));
        let j = serde_json::to_string(&k).unwrap();
        let back: PolicyKind = serde_json::from_str(&j).unwrap();
        assert_eq!(k, back);
    }
}
