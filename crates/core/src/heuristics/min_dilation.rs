//! The MinDilation scheduler of §3.1: "favors applications with low values
//! of ρ̃(k)(t)/ρ(k)(t)" — i.e. the applications furthest behind their
//! congestion-free schedule, which directly attacks the Dilation objective
//! (fairness / user-oriented).

use crate::policy::{
    greedy_allocate_into, order_by_key_asc, order_into_by_key_asc, AllocScratch, OnlinePolicy,
    SchedContext,
};

/// Serve the most-slowed-down applications first.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinDilation;

impl OnlinePolicy for MinDilation {
    fn name(&self) -> String {
        "mindilation".into()
    }

    fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
        order_by_key_asc(ctx, |a| a.dilation_ratio)
    }

    fn order_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        order_into_by_key_asc(ctx, scratch, |a| a.dilation_ratio);
    }

    fn allocate_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        self.order_into(ctx, scratch);
        greedy_allocate_into(ctx, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::{app, ctx};
    use iosched_model::AppId;

    #[test]
    fn most_dilated_app_wins() {
        let mut a0 = app(0, 10.0);
        a0.dilation_ratio = 0.9; // nearly on schedule
        let mut a1 = app(1, 10.0);
        a1.dilation_ratio = 0.3; // badly slowed down
        let pending = [a0, a1];
        let c = ctx(10.0, &pending);
        let alloc = MinDilation.allocate(&c);
        assert!(alloc.granted(AppId(1)).approx_eq(c.total_bw));
        assert!(alloc.granted(AppId(0)).is_zero());
    }

    #[test]
    fn leftover_bandwidth_flows_to_next_app() {
        let mut a0 = app(0, 4.0);
        a0.dilation_ratio = 0.1;
        let mut a1 = app(1, 4.0);
        a1.dilation_ratio = 0.5;
        let pending = [a0, a1];
        let c = ctx(10.0, &pending);
        let alloc = MinDilation.allocate(&c);
        assert!(alloc.granted(AppId(0)).as_gib_per_sec() > 3.9);
        assert!(alloc.granted(AppId(1)).as_gib_per_sec() > 3.9);
    }
}
