//! The MinMax-γ scheduler of §3.1: a tunable trade-off between MaxSysEff
//! and MinDilation.
//!
//! "favors applications with low values of β(k)ρ̃(k)(t), *unless* there
//! exists an application with a value ρ̃(k)(t)/ρ(k)(t) below a certain
//! threshold γ, in which case it favors the application with the lower
//! ρ̃(k)(t)/ρ(k)(t)."
//!
//! Since `0 ≤ ρ̃/ρ ≤ 1`, MinMax-γ degenerates to MinDilation at `γ = 1`
//! and to MaxSysEff at `γ = 0` (no ratio can sit strictly below 0).

use crate::policy::{greedy_allocate_into, AllocScratch, AppState, OnlinePolicy, SchedContext};

/// Threshold strategy: rescue applications whose dilation ratio fell below
/// `gamma`, otherwise optimize system efficiency.
#[derive(Debug, Clone, Copy)]
pub struct MinMax {
    gamma: f64,
}

impl MinMax {
    /// Create a MinMax-γ policy.
    ///
    /// # Panics
    /// Panics unless `0 ≤ γ ≤ 1` ("this threshold should be defined by the
    /// system administrator"; outside `[0,1]` it is meaningless).
    #[must_use]
    pub fn new(gamma: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&gamma),
            "MinMax threshold must be in [0, 1], got {gamma}"
        );
        Self { gamma }
    }

    /// The configured threshold.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    fn below_threshold(&self, a: &AppState) -> bool {
        a.dilation_ratio < self.gamma
    }
}

impl OnlinePolicy for MinMax {
    fn name(&self) -> String {
        format!("minmax-{:.2}", self.gamma)
    }

    fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
        // Applications below the dilation threshold are rescued first
        // (most dilated first); the rest follow in MaxSysEff order
        // (descending β·ρ̃ — see the deviation note on
        // [`crate::heuristics::MaxSysEff`]).
        let mut order: Vec<usize> = (0..ctx.pending.len()).collect();
        order.sort_by(|&x, &y| {
            let (ax, ay) = (&ctx.pending[x], &ctx.pending[y]);
            let (bx, by) = (self.below_threshold(ax), self.below_threshold(ay));
            by.cmp(&bx) // below-threshold group first
                .then_with(|| match (bx, by) {
                    (true, true) => ax.dilation_ratio.total_cmp(&ay.dilation_ratio),
                    _ => ay.syseff_key.total_cmp(&ax.syseff_key),
                })
                .then_with(|| ax.id.cmp(&ay.id))
        });
        order
    }

    fn order_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        // Same comparator as `order`, sorting the reused index buffer in
        // place. The comparator is strict on distinct applications (the
        // AppId tie-break), so the unstable sort yields the identical
        // permutation.
        scratch.order.clear();
        scratch.order.extend(0..ctx.pending.len());
        let gamma = self.gamma;
        scratch.order.sort_unstable_by(|&x, &y| {
            let (ax, ay) = (&ctx.pending[x], &ctx.pending[y]);
            let (bx, by) = (ax.dilation_ratio < gamma, ay.dilation_ratio < gamma);
            by.cmp(&bx)
                .then_with(|| match (bx, by) {
                    (true, true) => ax.dilation_ratio.total_cmp(&ay.dilation_ratio),
                    _ => ay.syseff_key.total_cmp(&ax.syseff_key),
                })
                .then_with(|| ax.id.cmp(&ay.id))
        });
    }

    fn allocate_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        self.order_into(ctx, scratch);
        greedy_allocate_into(ctx, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{MaxSysEff, MinDilation};
    use crate::policy::test_support::{app, ctx};
    use iosched_model::AppId;

    fn pending_mixed() -> [AppState; 3] {
        let mut a0 = app(0, 10.0);
        a0.dilation_ratio = 0.9;
        a0.syseff_key = 10.0; // best syseff key
        let mut a1 = app(1, 10.0);
        a1.dilation_ratio = 0.2; // far below any mid threshold
        a1.syseff_key = 500.0;
        let mut a2 = app(2, 10.0);
        a2.dilation_ratio = 0.6;
        a2.syseff_key = 50.0;
        [a0, a1, a2]
    }

    #[test]
    fn rescues_below_threshold_app() {
        let pending = pending_mixed();
        let c = ctx(10.0, &pending);
        let alloc = MinMax::new(0.5).allocate(&c);
        // App 1 (ratio 0.2 < 0.5) must be served despite the worst key.
        assert!(alloc.granted(AppId(1)).approx_eq(c.total_bw));
    }

    #[test]
    fn without_threshold_hit_behaves_like_maxsyseff() {
        let pending = pending_mixed();
        let c = ctx(10.0, &pending);
        let minmax = MinMax::new(0.1).allocate(&c); // nobody below 0.1
        let maxsyseff = MaxSysEff.allocate(&c);
        assert_eq!(minmax, maxsyseff);
    }

    #[test]
    fn gamma_one_equals_mindilation() {
        let pending = pending_mixed();
        let c = ctx(10.0, &pending);
        let minmax = MinMax::new(1.0).allocate(&c);
        let mindil = MinDilation.allocate(&c);
        assert_eq!(minmax, mindil);
    }

    #[test]
    fn gamma_zero_equals_maxsyseff() {
        let pending = pending_mixed();
        let c = ctx(10.0, &pending);
        let minmax = MinMax::new(0.0).allocate(&c);
        let maxsyseff = MaxSysEff.allocate(&c);
        assert_eq!(minmax, maxsyseff);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_gamma_panics() {
        let _ = MinMax::new(1.5);
    }

    #[test]
    fn name_embeds_gamma() {
        assert_eq!(MinMax::new(0.25).name(), "minmax-0.25");
    }
}
