//! # iosched-core
//!
//! The scheduling contribution of *"Scheduling the I/O of HPC applications
//! under congestion"* (IPDPS 2015):
//!
//! * the **online scheduler** abstraction of §3.1 ([`policy::OnlinePolicy`])
//!   and the paper's four event-driven heuristics — [`heuristics::RoundRobin`],
//!   [`heuristics::MinDilation`], [`heuristics::MaxSysEff`],
//!   [`heuristics::MinMax`] — plus the [`heuristics::Priority`] wrapper that
//!   never interrupts an application that already started its I/O (disk
//!   locality, §3.1);
//! * the **periodic scheduler** of §3.2: bandwidth profiles over one period
//!   ([`periodic::BandwidthProfile`]), greedy contiguous insertion
//!   ([`periodic::ScheduleBuilder`]), the two insertion heuristics
//!   Insert-In-Schedule-Throu / Insert-In-Schedule-Cong
//!   ([`periodic::InsertionHeuristic`]) and the `(1+ε)` period search
//!   ([`periodic::PeriodSearch`]);
//! * the **uncoordinated baselines** the paper compares against
//!   ([`baselines::FairShare`], [`baselines::Fcfs`]) — hosted here (and
//!   re-exported by `iosched-baselines`) so the roster below can build
//!   them;
//! * the **scenario-aware policy registry** ([`registry::PolicyFactory`]):
//!   one serializable roster spanning the online heuristics, the
//!   baselines and the offline periodic schedules, with a two-stage
//!   parse-name → instantiate-for-scenario build
//!   (`build(&Platform, &[AppSpec])`) so policies that precompute
//!   per-workload state — a periodic timetable — are first-class roster
//!   members;
//! * the **adaptive control family** ([`control`]): a PI feedback loop
//!   over the congestion telemetry a driving engine hands to policies
//!   through [`policy::SchedContext::signal`] — utilization-setpoint
//!   tracking, token-bucket per-application throttles, registered in the
//!   roster under the `control:pi[:kp=..][:ki=..][:set=..][:win=..]`
//!   grammar;
//! * the **NP-completeness machinery** of Theorem 1: an executable
//!   3-Partition reduction with a brute-force reference solver
//!   ([`three_partition`]).

pub mod baselines;
pub mod control;
pub mod heuristics;
pub mod periodic;
pub mod policy;
pub mod registry;
pub mod three_partition;

pub use baselines::{FairShare, Fcfs};
pub use control::{CongestionSignal, ControlPolicy, PiController, TokenBucket};
pub use heuristics::{
    standard_policies, BasePolicy, MaxSysEff, MinDilation, MinMax, PolicyKind, Priority, RoundRobin,
};
pub use policy::{Allocation, AppState, OnlinePolicy, SchedContext};
pub use registry::{ControlFactory, PeriodicFactory, PolicyFactory};
