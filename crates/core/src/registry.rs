//! The scenario-aware policy registry: **one roster spanning the §3.1
//! online heuristics, the uncoordinated baselines and the §3.2 offline
//! periodic schedules**.
//!
//! A [`PolicyFactory`] is the two-stage, serializable description of a
//! scheduling policy:
//!
//! 1. **Parse / serde stage** — a factory is pure data with a canonical
//!    string form ([`PolicyFactory::parse`] / [`PolicyFactory::name`]):
//!    `"maxsyseff"`, `"priority-minmax-0.25"`, `"fairshare"`,
//!    `"periodic:cong"`, … The string *is* the serde representation, so
//!    report keys, CLI arguments and campaign JSON share one vocabulary.
//! 2. **Instantiate-for-scenario stage** — [`PolicyFactory::build`]
//!    receives the resolved [`Platform`] and the *materialized*
//!    application list and returns the runnable
//!    [`OnlinePolicy`]. Context-free policies (every §3.1 heuristic and
//!    baseline) ignore the scenario; policies that precompute
//!    per-workload state — today the [`PolicyFactory::Periodic`] family,
//!    which runs the §3.2.3 insertion + `(1+ε)` period search over the
//!    scenario's applications and replays the winning timetable — are
//!    thereby first-class roster members instead of hand-wired
//!    per-figure code.
//!
//! The split matters because stage 2 can be expensive (a period search)
//! and can *fail* (a non-periodic workload, a schedule that starves an
//! application): campaign files parse and validate eagerly at stage 1,
//! while stage 2 runs on the worker that already materialized the
//! workload — once per seed block, exactly where the apps live.
//!
//! ## The periodic grammar
//!
//! ```text
//! periodic:<cong|throu>[:<dilation|syseff>][:eps=<ε>][:tmax=<factor>]
//! ```
//!
//! `cong` (Insert-In-Schedule-Cong) defaults to the Dilation search
//! objective, `throu` (Insert-In-Schedule-Throu) to SysEfficiency — the
//! pairings of §3.2.3. `eps` (default 0.05) and `tmax` (default 10,
//! `Tmax = tmax·T₀`) tune the period search. [`PolicyFactory::name`]
//! prints only the non-default segments, and every printed name parses
//! back to the identical factory (f64 display round-trips exactly).
//!
//! ## The control grammar
//!
//! ```text
//! control:pi[:kp=K][:ki=I][:set=S][:win=W]
//! ```
//!
//! The closed-loop family ([`crate::control`]): a PI controller with
//! proportional gain `kp` (default 0.5), integral gain `ki` (default
//! 0.05 /s), delivered-utilization setpoint `set` (default 0.9, must be
//! in `(0, 1]`) and sensing window `win` seconds (default 30). The same
//! elision and exact-roundtrip rules as the periodic grammar apply.

use crate::baselines::{FairShare, Fcfs};
use crate::control::ControlPolicy;
use crate::heuristics::{BasePolicy, PolicyKind};
use crate::periodic::{
    InsertionHeuristic, PeriodSearch, PeriodicAppSpec, PeriodicObjective, PeriodicSchedule,
    TimetablePolicy,
};
use crate::policy::OnlinePolicy;
use iosched_model::{AppSpec, Platform};

/// Buildable description of a policy — everything a batch runner can
/// parse up front and instantiate fresh inside a worker thread once the
/// scenario is materialized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyFactory {
    /// One of the paper's §3.1 heuristics (MaxSysEff, MinMax-γ, …,
    /// ± Priority).
    Kind(PolicyKind),
    /// Uncoordinated max–min fair sharing (the native baseline's policy).
    FairShare,
    /// Strict first-come-first-served.
    Fcfs,
    /// A §3.2 periodic schedule, built for the scenario at instantiation
    /// time and replayed as a timetable.
    Periodic(PeriodicFactory),
    /// The adaptive closed-loop family ([`crate::control`]): a PI
    /// controller over the engine's congestion telemetry.
    Control(ControlFactory),
}

/// The closed-loop branch of the roster: the PI gains, the
/// delivered-utilization setpoint and the sensing window of a
/// [`ControlPolicy`].
///
/// Grammar: `control:pi[:kp=K][:ki=I][:set=S][:win=W]`, segments in that
/// canonical order, each elided from [`ControlFactory::name`] when it
/// equals the default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlFactory {
    /// Proportional gain (`kp=`, finite, ≥ 0).
    pub kp: f64,
    /// Integral gain per second (`ki=`, finite, ≥ 0).
    pub ki: f64,
    /// Delivered-utilization setpoint (`set=`, in `(0, 1]`).
    pub setpoint: f64,
    /// Sensing window / burst horizon in seconds (`win=`, positive).
    pub window: f64,
}

impl Default for ControlFactory {
    fn default() -> Self {
        Self {
            kp: ControlPolicy::DEFAULT_KP,
            ki: ControlPolicy::DEFAULT_KI,
            setpoint: ControlPolicy::DEFAULT_SETPOINT,
            window: ControlPolicy::DEFAULT_WINDOW_SECS,
        }
    }
}

impl ControlFactory {
    /// Override the proportional gain.
    #[must_use]
    pub fn with_kp(mut self, kp: f64) -> Self {
        self.kp = kp;
        self
    }

    /// Override the integral gain.
    #[must_use]
    pub fn with_ki(mut self, ki: f64) -> Self {
        self.ki = ki;
        self
    }

    /// Override the utilization setpoint.
    #[must_use]
    pub fn with_setpoint(mut self, setpoint: f64) -> Self {
        self.setpoint = setpoint;
        self
    }

    /// Override the sensing window (seconds).
    #[must_use]
    pub fn with_window(mut self, window: f64) -> Self {
        self.window = window;
        self
    }

    /// Check the knobs against what [`ControlPolicy::new`] accepts, with
    /// actionable messages (the grammar calls this, so parsing fails on
    /// the same inputs building would).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.kp.is_finite() && self.kp >= 0.0) {
            return Err(format!(
                "control kp {} must be finite and non-negative",
                self.kp
            ));
        }
        if !(self.ki.is_finite() && self.ki >= 0.0) {
            return Err(format!(
                "control ki {} must be finite and non-negative",
                self.ki
            ));
        }
        if !(self.setpoint.is_finite() && self.setpoint > 0.0 && self.setpoint <= 1.0) {
            return Err(format!(
                "control set {} must be a utilization in (0, 1]",
                self.setpoint
            ));
        }
        if !(self.window.is_finite() && self.window > 0.0) {
            return Err(format!(
                "control win {} must be a positive number of seconds",
                self.window
            ));
        }
        Ok(())
    }

    /// Instantiate the controller (context-free: the loop learns the
    /// scenario from the telemetry it observes).
    #[must_use]
    pub fn build(&self) -> ControlPolicy {
        ControlPolicy::new(self.kp, self.ki, self.setpoint, self.window).with_name(self.name())
    }

    /// The canonical name: non-default segments only, in grammar order.
    #[must_use]
    pub fn name(&self) -> String {
        let defaults = Self::default();
        let mut name = String::from("control:pi");
        if self.kp != defaults.kp {
            name.push_str(&format!(":kp={}", self.kp));
        }
        if self.ki != defaults.ki {
            name.push_str(&format!(":ki={}", self.ki));
        }
        if self.setpoint != defaults.setpoint {
            name.push_str(&format!(":set={}", self.setpoint));
        }
        if self.window != defaults.window {
            name.push_str(&format!(":win={}", self.window));
        }
        name
    }

    /// Parse the segments after the `control:` prefix.
    fn parse_segments(rest: &str) -> Result<Self, String> {
        let mut segments = rest.split(':');
        match segments.next() {
            Some("pi") => {}
            other => {
                return Err(format!(
                    "unknown control algorithm '{}' (expected pi)",
                    other.unwrap_or("")
                ))
            }
        }
        let mut factory = Self::default();
        let mut rest: Vec<&str> = segments.collect();
        rest.reverse(); // pop() now yields segments left to right
        let knob = |prefix: &str, rest: &mut Vec<&str>| -> Result<Option<f64>, String> {
            let Some(v) = rest.last().and_then(|s| s.strip_prefix(prefix)) else {
                return Ok(None);
            };
            let parsed = v
                .parse::<f64>()
                .map_err(|_| format!("bad control {prefix}'{v}'"))?;
            rest.pop();
            Ok(Some(parsed))
        };
        if let Some(v) = knob("kp=", &mut rest)? {
            factory.kp = v;
        }
        if let Some(v) = knob("ki=", &mut rest)? {
            factory.ki = v;
        }
        if let Some(v) = knob("set=", &mut rest)? {
            factory.setpoint = v;
        }
        if let Some(v) = knob("win=", &mut rest)? {
            factory.window = v;
        }
        if let Some(stray) = rest.pop() {
            return Err(format!(
                "unexpected control segment '{stray}' \
                 (grammar: control:pi[:kp=K][:ki=I][:set=S][:win=W])"
            ));
        }
        factory.validate()?;
        Ok(factory)
    }
}

/// The offline branch of the roster: which §3.2.3 insertion heuristic
/// fills candidate periods, which objective the `(1+ε)` search optimizes,
/// and the two search knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicFactory {
    /// Period-filling insertion heuristic.
    pub heuristic: InsertionHeuristic,
    /// Objective guiding the period search.
    pub objective: PeriodicObjective,
    /// Multiplicative search step ε.
    pub epsilon: f64,
    /// `Tmax = max_factor · T₀`.
    pub max_factor: f64,
}

impl PeriodicFactory {
    /// Search defaults — the same constants [`PeriodSearch::new`] uses,
    /// so `name()`'s elision of default segments can never drift from
    /// what a directly-constructed search would run.
    pub const DEFAULT_EPSILON: f64 = PeriodSearch::DEFAULT_EPSILON;
    /// See [`PeriodicFactory::DEFAULT_EPSILON`].
    pub const DEFAULT_MAX_FACTOR: f64 = PeriodSearch::DEFAULT_MAX_FACTOR;

    /// The §3.2.3 pairing: each insertion heuristic with the objective it
    /// was designed for, at the default search knobs.
    #[must_use]
    pub fn new(heuristic: InsertionHeuristic) -> Self {
        Self {
            heuristic,
            objective: Self::paired_objective(heuristic),
            epsilon: Self::DEFAULT_EPSILON,
            max_factor: Self::DEFAULT_MAX_FACTOR,
        }
    }

    /// The objective each insertion heuristic targets (§3.2.3):
    /// Insert-In-Schedule-Cong minimizes Dilation,
    /// Insert-In-Schedule-Throu maximizes SysEfficiency.
    #[must_use]
    pub fn paired_objective(heuristic: InsertionHeuristic) -> PeriodicObjective {
        match heuristic {
            InsertionHeuristic::Congestion => PeriodicObjective::Dilation,
            InsertionHeuristic::Throughput => PeriodicObjective::SysEfficiency,
        }
    }

    /// Override the search objective.
    #[must_use]
    pub fn with_objective(mut self, objective: PeriodicObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Override the search step ε.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Override `Tmax/T₀`.
    #[must_use]
    pub fn with_max_factor(mut self, max_factor: f64) -> Self {
        self.max_factor = max_factor;
        self
    }

    /// The configured period search.
    pub fn search(&self) -> Result<PeriodSearch, String> {
        // `1 + ε > 1` and not just `ε > 0`: an ε below f64 resolution
        // (say 1e-17) would leave the `(1+ε)` period progression exactly
        // in place, degenerating the search to its first candidate.
        if !(self.epsilon.is_finite() && self.epsilon > 0.0 && 1.0 + self.epsilon > 1.0) {
            return Err(format!("periodic eps {} must be positive", self.epsilon));
        }
        if !(self.max_factor.is_finite() && self.max_factor >= 1.0) {
            return Err(format!(
                "periodic tmax {} must be at least 1",
                self.max_factor
            ));
        }
        Ok(PeriodSearch {
            epsilon: self.epsilon,
            max_factor: self.max_factor,
            objective: self.objective,
        })
    }

    /// Stage 2 for the offline family: extract the periodic profiles of
    /// the scenario's applications, run the §3.2.3 search
    /// ([`PeriodSearch::run_complete`]: only candidates scheduling every
    /// application compete — a starved timetable would never grant the
    /// application and its replay could not terminate) and return the
    /// best schedule. Fails on non-periodic applications, an empty
    /// scenario, or when every candidate period starves someone.
    pub fn build_schedule(
        &self,
        platform: &Platform,
        apps: &[AppSpec],
    ) -> Result<PeriodicSchedule, String> {
        let search = self.search()?;
        let specs: Vec<PeriodicAppSpec> = apps
            .iter()
            .map(PeriodicAppSpec::from_app)
            .collect::<Result<_, _>>()
            .map_err(|e| format!("{}: {e}", self.name()))?;
        if specs.is_empty() {
            return Err(format!("{}: empty application set", self.name()));
        }
        let result = search
            .run_complete(platform, &specs, self.heuristic)
            .ok_or_else(|| {
                format!(
                    "{}: every candidate period starves an application \
                     (n_per = 0); raise tmax or refine eps",
                    self.name()
                )
            })?;
        debug_assert!(result.schedule.plans.iter().all(|p| p.n_per() > 0));
        Ok(result.schedule)
    }

    /// The canonical name: non-default segments only.
    #[must_use]
    pub fn name(&self) -> String {
        let mut name = format!(
            "periodic:{}",
            match self.heuristic {
                InsertionHeuristic::Congestion => "cong",
                InsertionHeuristic::Throughput => "throu",
            }
        );
        if self.objective != Self::paired_objective(self.heuristic) {
            name.push_str(match self.objective {
                PeriodicObjective::Dilation => ":dilation",
                PeriodicObjective::SysEfficiency => ":syseff",
            });
        }
        if self.epsilon != Self::DEFAULT_EPSILON {
            name.push_str(&format!(":eps={}", self.epsilon));
        }
        if self.max_factor != Self::DEFAULT_MAX_FACTOR {
            name.push_str(&format!(":tmax={}", self.max_factor));
        }
        name
    }

    /// Parse the segments after the `periodic:` prefix.
    fn parse_segments(rest: &str) -> Result<Self, String> {
        let mut segments = rest.split(':');
        let heuristic = match segments.next() {
            Some("cong") => InsertionHeuristic::Congestion,
            Some("throu") => InsertionHeuristic::Throughput,
            other => {
                return Err(format!(
                    "unknown periodic heuristic '{}' (expected cong or throu)",
                    other.unwrap_or("")
                ))
            }
        };
        let mut factory = Self::new(heuristic);
        let mut rest: Vec<&str> = segments.collect();
        rest.reverse(); // pop() now yields segments left to right
        if let Some(&seg) = rest.last() {
            match seg {
                "dilation" => {
                    factory.objective = PeriodicObjective::Dilation;
                    rest.pop();
                }
                "syseff" => {
                    factory.objective = PeriodicObjective::SysEfficiency;
                    rest.pop();
                }
                _ => {}
            }
        }
        if let Some(v) = rest.last().and_then(|s| s.strip_prefix("eps=")) {
            factory.epsilon = v
                .parse::<f64>()
                .map_err(|_| format!("bad periodic eps '{v}'"))?;
            rest.pop();
        }
        if let Some(v) = rest.last().and_then(|s| s.strip_prefix("tmax=")) {
            factory.max_factor = v
                .parse::<f64>()
                .map_err(|_| format!("bad periodic tmax '{v}'"))?;
            rest.pop();
        }
        if let Some(stray) = rest.pop() {
            return Err(format!(
                "unexpected periodic segment '{stray}' \
                 (grammar: periodic:<cong|throu>[:<dilation|syseff>][:eps=E][:tmax=F])"
            ));
        }
        // Range validation lives in `search()` (the one place that knows
        // what the period search accepts); parsing fails on the same
        // inputs build would.
        factory.search()?;
        Ok(factory)
    }
}

impl PolicyFactory {
    /// Instantiate the policy for a concrete scenario (stage 2).
    ///
    /// The online roster ignores `platform` and `apps`; the periodic
    /// family runs its schedule search over them and returns the
    /// timetable replay. Errors carry the factory name.
    pub fn build(
        &self,
        platform: &Platform,
        apps: &[AppSpec],
    ) -> Result<Box<dyn OnlinePolicy>, String> {
        match self {
            Self::Kind(kind) => Ok(kind.build()),
            Self::FairShare => Ok(Box::new(FairShare)),
            Self::Fcfs => Ok(Box::new(Fcfs)),
            Self::Periodic(periodic) => {
                let schedule = periodic.build_schedule(platform, apps)?;
                Ok(Box::new(
                    TimetablePolicy::new(schedule).with_name(periodic.name()),
                ))
            }
            Self::Control(control) => {
                control.validate()?;
                Ok(Box::new(control.build()))
            }
        }
    }

    /// Instantiate the policy for an *online* context — a live daemon or
    /// any caller whose arrival sequence is not known up front. The
    /// offline periodic family is rejected with an actionable error: its
    /// stage-2 schedule search needs the complete roster before the run
    /// starts, which an open admission stream can never provide. Every
    /// context-free factory builds exactly as [`PolicyFactory::build`]
    /// with an empty roster would — which is also what makes a
    /// checkpoint replay reinstantiate the identical policy: the factory
    /// name is the whole recipe.
    pub fn build_online(&self, platform: &Platform) -> Result<Box<dyn OnlinePolicy>, String> {
        if self.is_offline() {
            return Err(format!(
                "policy '{}' is an offline periodic schedule: it must see the \
                 complete application roster before the run starts and cannot \
                 serve online submissions; pick an online policy \
                 (e.g. maxsyseff, mindilation, fairshare, or control:pi)",
                self.name()
            ));
        }
        self.build(platform, &[])
    }

    /// True for factories whose build step actually uses the scenario
    /// (the offline periodic family); the §3.1 heuristics and baselines
    /// are context-free.
    #[must_use]
    pub fn is_offline(&self) -> bool {
        matches!(self, Self::Periodic(_))
    }

    /// Scenario-independent validation: every parsed factory passes (the
    /// grammar already rejects bad knobs), but *programmatically*
    /// constructed factories can carry a degenerate periodic search
    /// (ε ≤ 0 or below f64 resolution, Tmax < T₀) whose canonical name
    /// would not parse back — campaign validation calls this so such a
    /// spec is rejected before it is written or executed.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Self::Periodic(periodic) => periodic.search().map(drop),
            Self::Control(control) => control.validate(),
            _ => Ok(()),
        }
    }

    /// The report name of the built policy.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Self::Kind(kind) => kind.name(),
            Self::FairShare => "fairshare".into(),
            Self::Fcfs => "fcfs".into(),
            Self::Periodic(periodic) => periodic.name(),
            Self::Control(control) => control.name(),
        }
    }

    /// Parse the names used throughout the reports, the CLI and campaign
    /// files: `roundrobin`, `mindilation`, `maxsyseff`, `minmax-<γ>`,
    /// `fairshare`, `fcfs`, `priority-` variants of the heuristics, and
    /// the offline `periodic:<cong|throu>[…]` forms (see the
    /// [module docs](self) for the full periodic grammar).
    pub fn parse(name: &str) -> Result<Self, String> {
        if let Some(rest) = name.strip_prefix("periodic:") {
            return PeriodicFactory::parse_segments(rest).map(Self::Periodic);
        }
        if let Some(rest) = name.strip_prefix("control:") {
            return ControlFactory::parse_segments(rest).map(Self::Control);
        }
        let (prio, bare) = match name.strip_prefix("priority-") {
            Some(rest) => (true, rest),
            None => (false, name),
        };
        let kind = |base: BasePolicy| {
            Ok(Self::Kind(if prio {
                PolicyKind::with_priority(base)
            } else {
                PolicyKind::plain(base)
            }))
        };
        match bare {
            "roundrobin" => kind(BasePolicy::RoundRobin),
            "mindilation" => kind(BasePolicy::MinDilation),
            "maxsyseff" => kind(BasePolicy::MaxSysEff),
            "fairshare" if !prio => Ok(Self::FairShare),
            "fcfs" if !prio => Ok(Self::Fcfs),
            other => match other.strip_prefix("minmax-") {
                Some(gamma) => {
                    let g: f64 = gamma
                        .parse()
                        .map_err(|_| format!("bad MinMax threshold '{gamma}'"))?;
                    if !(0.0..=1.0).contains(&g) {
                        return Err(format!("MinMax threshold {g} outside [0, 1]"));
                    }
                    kind(BasePolicy::MinMax(g))
                }
                None => Err(format!(
                    "unknown policy '{name}' (try roundrobin, mindilation, maxsyseff, \
                     minmax-<γ>, fairshare, fcfs, a priority- prefix, \
                     periodic:<cong|throu>, or control:pi)"
                )),
            },
        }
    }

    /// The serde string: [`PolicyFactory::name`] when it parses back to
    /// this exact factory (true for the whole paper roster and every
    /// periodic form), else a full-precision spelling — `name()` rounds
    /// the MinMax γ to two decimals for display, which would silently
    /// corrupt e.g. `γ = 1/3` on a serialize → deserialize trip.
    #[must_use]
    pub fn serde_name(&self) -> String {
        let display = self.name();
        if Self::parse(&display).ok() == Some(*self) {
            return display;
        }
        match self {
            Self::Kind(kind) => {
                let BasePolicy::MinMax(g) = kind.base else {
                    unreachable!("only MinMax names are lossy");
                };
                let prefix = if kind.priority { "priority-" } else { "" };
                format!("{prefix}minmax-{g}")
            }
            _ => display,
        }
    }

    /// Every *online* policy the paper's evaluation touches: the eight
    /// Fig. 6 heuristics plus the two uncoordinated baselines. The roster
    /// behind the CLI's `--policy all`.
    #[must_use]
    pub fn full_roster() -> Vec<PolicyFactory> {
        let mut roster: Vec<PolicyFactory> = PolicyKind::fig6_roster()
            .into_iter()
            .map(PolicyFactory::Kind)
            .collect();
        roster.push(PolicyFactory::FairShare);
        roster.push(PolicyFactory::Fcfs);
        roster
    }

    /// The offline branch: both §3.2.3 insertion heuristics at their
    /// paired objectives and default search knobs.
    #[must_use]
    pub fn offline_roster() -> Vec<PolicyFactory> {
        vec![
            PolicyFactory::Periodic(PeriodicFactory::new(InsertionHeuristic::Congestion)),
            PolicyFactory::Periodic(PeriodicFactory::new(InsertionHeuristic::Throughput)),
        ]
    }

    /// The closed-loop branch: the default PI controller.
    #[must_use]
    pub fn control_roster() -> Vec<PolicyFactory> {
        vec![PolicyFactory::Control(ControlFactory::default())]
    }

    /// The whole registry: online roster, offline roster, then the
    /// closed-loop control family.
    #[must_use]
    pub fn complete_roster() -> Vec<PolicyFactory> {
        let mut roster = Self::full_roster();
        roster.extend(Self::offline_roster());
        roster.extend(Self::control_roster());
        roster
    }
}

impl serde::Serialize for PolicyFactory {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.serde_name())
    }
}

impl serde::Deserialize for PolicyFactory {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let name = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("expected policy name string"))?;
        Self::parse(name).map_err(serde::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::{Bw, Bytes, Time};

    #[test]
    fn parse_covers_the_complete_roster() {
        for name in [
            "roundrobin",
            "mindilation",
            "maxsyseff",
            "minmax-0.5",
            "priority-minmax-0.25",
            "priority-maxsyseff",
            "fairshare",
            "fcfs",
            "periodic:cong",
            "periodic:throu",
            "periodic:cong:syseff",
            "periodic:throu:dilation",
            "periodic:cong:eps=0.02",
            "periodic:cong:eps=0.02:tmax=1.5",
            "periodic:throu:syseff:eps=0.1:tmax=4",
            "control:pi",
            "control:pi:kp=1",
            "control:pi:kp=0.25:ki=0.01:set=0.85:win=120",
        ] {
            let factory = PolicyFactory::parse(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            // The canonical name parses back to the identical factory.
            assert_eq!(
                PolicyFactory::parse(&factory.name()).unwrap(),
                factory,
                "name() not canonical for {name}"
            );
        }
    }

    #[test]
    fn periodic_grammar_rejects_malformed_forms() {
        for bad in [
            "periodic:",
            "periodic:fast",
            "periodic:cong:bogus",
            "periodic:cong:eps=zero",
            "periodic:cong:eps=-0.1",
            "periodic:cong:eps=0",
            // Below f64 resolution: 1 + ε == 1, the (1+ε) progression
            // would never advance.
            "periodic:cong:eps=1e-17",
            "periodic:cong:tmax=0.5",
            "periodic:cong:tmax=1.5:eps=0.1", // segments out of canonical order
            "periodic:cong:eps=0.1:eps=0.2",
            "lottery",
            "minmax-1.5",
            "priority-fairshare",
            "priority-periodic:cong",
        ] {
            assert!(PolicyFactory::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn periodic_names_print_only_non_default_segments() {
        let cong = PeriodicFactory::new(InsertionHeuristic::Congestion);
        assert_eq!(cong.name(), "periodic:cong");
        assert_eq!(
            cong.with_objective(PeriodicObjective::SysEfficiency).name(),
            "periodic:cong:syseff"
        );
        let tuned = PeriodicFactory::new(InsertionHeuristic::Congestion)
            .with_epsilon(0.02)
            .with_max_factor(1.5);
        assert_eq!(tuned.name(), "periodic:cong:eps=0.02:tmax=1.5");
        assert_eq!(
            PolicyFactory::parse(&tuned.name()).unwrap(),
            PolicyFactory::Periodic(tuned)
        );
        assert_eq!(
            PeriodicFactory::new(InsertionHeuristic::Throughput).name(),
            "periodic:throu"
        );
    }

    fn scenario() -> (Platform, Vec<AppSpec>) {
        let platform = Platform::new("t", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0));
        let apps = vec![
            AppSpec::periodic(0, Time::ZERO, 100, Time::secs(8.0), Bytes::gib(20.0), 3),
            AppSpec::periodic(1, Time::ZERO, 100, Time::secs(8.0), Bytes::gib(20.0), 3),
        ];
        (platform, apps)
    }

    #[test]
    fn online_factories_build_ignoring_the_scenario() {
        let (platform, apps) = scenario();
        for factory in PolicyFactory::full_roster() {
            let policy = factory.build(&platform, &apps).unwrap();
            assert_eq!(policy.name(), factory.name());
            // Context-free: an empty scenario builds too.
            assert!(factory.build(&platform, &[]).is_ok());
            assert!(!factory.is_offline());
        }
    }

    #[test]
    fn periodic_factory_builds_the_searched_timetable() {
        let (platform, apps) = scenario();
        let factory = PolicyFactory::Periodic(PeriodicFactory::new(InsertionHeuristic::Congestion));
        let policy = factory.build(&platform, &apps).unwrap();
        assert_eq!(policy.name(), "periodic:cong");
        assert!(factory.is_offline());
        // The schedule the factory replays is exactly the search's best.
        let periodic = PeriodicFactory::new(InsertionHeuristic::Congestion);
        let schedule = periodic.build_schedule(&platform, &apps).unwrap();
        let specs: Vec<PeriodicAppSpec> = apps
            .iter()
            .map(|a| PeriodicAppSpec::from_app(a).unwrap())
            .collect();
        let manual = periodic
            .search()
            .unwrap()
            .run(&platform, &specs, InsertionHeuristic::Congestion)
            .unwrap();
        assert_eq!(schedule, manual.schedule);
    }

    #[test]
    fn periodic_build_fails_cleanly_on_bad_scenarios() {
        let (platform, apps) = scenario();
        let factory = PeriodicFactory::new(InsertionHeuristic::Congestion);
        // Empty scenario.
        let err = factory.build_schedule(&platform, &[]).unwrap_err();
        assert!(err.contains("empty"), "{err}");
        // Non-periodic application.
        let mut aperiodic = apps.clone();
        aperiodic.push(AppSpec::new(
            2,
            Time::ZERO,
            10,
            iosched_model::InstancePattern::Explicit(vec![
                iosched_model::Instance::new(Time::secs(1.0), Bytes::gib(1.0)),
                iosched_model::Instance::new(Time::secs(2.0), Bytes::gib(1.0)),
            ]),
        ));
        let err = factory.build_schedule(&platform, &aperiodic).unwrap_err();
        assert!(err.contains("periodic"), "{err}");
        // Invalid knobs surface as errors, not panics.
        assert!(factory
            .with_epsilon(0.0)
            .build_schedule(&platform, &apps)
            .is_err());
        assert!(factory
            .with_max_factor(0.5)
            .build_schedule(&platform, &apps)
            .is_err());
    }

    #[test]
    fn starved_schedules_are_rejected_at_build() {
        // Deterministic starvation: T₀ = 1000.2 s (app 0's span), and the
        // two pure-I/O hogs each need the whole PFS for 1000 s. The first
        // hog reserves [0, 1000); the second finds no window at any
        // bandwidth-ladder rung within the single tmax = 1 candidate
        // period, so it ends with n_per = 0 and the factory must refuse.
        let platform = Platform::new("t", 1_000, Bw::gib_per_sec(0.01), Bw::gib_per_sec(0.5));
        let apps = vec![
            AppSpec::periodic(0, Time::ZERO, 50, Time::secs(1_000.0), Bytes::gib(0.1), 1),
            AppSpec::periodic(1, Time::ZERO, 50, Time::secs(0.0), Bytes::gib(500.0), 1),
            AppSpec::periodic(2, Time::ZERO, 50, Time::secs(0.0), Bytes::gib(500.0), 1),
        ];
        let factory = PeriodicFactory::new(InsertionHeuristic::Throughput).with_max_factor(1.0);
        let err = factory
            .build_schedule(&platform, &apps)
            .expect_err("the second hog cannot be scheduled");
        assert!(err.contains("starves"), "{err}");
        assert!(err.contains("periodic:throu"), "{err}");
    }

    #[test]
    fn serde_is_the_name_string_for_the_complete_roster() {
        for factory in PolicyFactory::complete_roster() {
            let json = serde_json::to_string(&factory).unwrap();
            assert_eq!(json, format!("\"{}\"", factory.name()));
            let back: PolicyFactory = serde_json::from_str(&json).unwrap();
            assert_eq!(back, factory, "serde roundtrip diverged for {json}");
        }
        // Periodic knobs survive serde at full precision.
        let tuned = PolicyFactory::Periodic(
            PeriodicFactory::new(InsertionHeuristic::Congestion)
                .with_epsilon(1.0 / 3.0)
                .with_max_factor(2.5),
        );
        let json = serde_json::to_string(&tuned).unwrap();
        let back: PolicyFactory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tuned);
    }

    #[test]
    fn rosters_are_disjoint_and_named_uniquely() {
        let roster = PolicyFactory::complete_roster();
        assert_eq!(roster.len(), 13, "10 online + 2 offline + 1 control");
        let mut names: Vec<String> = roster.iter().map(PolicyFactory::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 13, "duplicate names in the roster");
        assert_eq!(
            roster.iter().filter(|f| f.is_offline()).count(),
            2,
            "offline branch is the two periodic defaults"
        );
        assert!(
            roster
                .iter()
                .any(|f| matches!(f, PolicyFactory::Control(_))),
            "control family in the roster"
        );
    }

    #[test]
    fn control_grammar_roundtrips_and_elides_defaults() {
        let default = ControlFactory::default();
        assert_eq!(default.name(), "control:pi");
        assert_eq!(
            PolicyFactory::parse("control:pi").unwrap(),
            PolicyFactory::Control(default)
        );
        for name in [
            "control:pi:kp=1",
            "control:pi:ki=0.2",
            "control:pi:set=0.8",
            "control:pi:win=60",
            "control:pi:kp=0.25:set=0.85",
            "control:pi:kp=0.25:ki=0.01:set=0.85:win=120",
        ] {
            let factory = PolicyFactory::parse(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(factory.name(), name, "name() not canonical for {name}");
            assert_eq!(PolicyFactory::parse(&factory.name()).unwrap(), factory);
            assert!(!factory.is_offline(), "control is an online family");
        }
        // Tuned knobs survive serde at full precision.
        let tuned = PolicyFactory::Control(
            ControlFactory::default()
                .with_kp(1.0 / 3.0)
                .with_window(45.5),
        );
        let json = serde_json::to_string(&tuned).unwrap();
        let back: PolicyFactory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tuned);
    }

    #[test]
    fn control_grammar_rejects_malformed_gains_with_actionable_errors() {
        for (bad, needle) in [
            ("control:", "algorithm"),
            ("control:pd", "algorithm"),
            ("control:pi:kp=-1", "non-negative"),
            ("control:pi:kp=nope", "bad control"),
            ("control:pi:ki=-0.5", "non-negative"),
            ("control:pi:set=2.0", "(0, 1]"),
            ("control:pi:set=0", "(0, 1]"),
            ("control:pi:set=-0.5", "(0, 1]"),
            ("control:pi:win=0", "positive"),
            ("control:pi:win=-10", "positive"),
            ("control:pi:win=inf", "positive"),
            ("control:pi:gain=1", "unexpected control segment"),
            // Segments out of canonical order are strays.
            ("control:pi:set=0.8:kp=1", "unexpected control segment"),
            ("control:pi:kp=1:kp=2", "unexpected control segment"),
            ("priority-control:pi", "unknown policy"),
        ] {
            let err = PolicyFactory::parse(bad).expect_err(bad);
            assert!(
                err.contains(needle),
                "{bad}: error '{err}' lacks '{needle}'"
            );
        }
    }

    #[test]
    fn build_online_serves_every_context_free_factory_and_refuses_offline() {
        let (platform, _) = scenario();
        for factory in PolicyFactory::complete_roster() {
            if factory.is_offline() {
                let err = match factory.build_online(&platform) {
                    Ok(_) => panic!("{} must refuse online builds", factory.name()),
                    Err(e) => e,
                };
                assert!(err.contains("offline periodic"), "{err}");
                assert!(err.contains(&factory.name()), "{err}");
                assert!(err.contains("pick an online policy"), "{err}");
            } else {
                let policy = factory.build_online(&platform).unwrap();
                assert_eq!(policy.name(), factory.name());
            }
        }
    }

    #[test]
    fn control_factory_builds_the_named_policy() {
        let (platform, apps) = scenario();
        let factory = PolicyFactory::parse("control:pi:set=0.8").unwrap();
        let policy = factory.build(&platform, &apps).unwrap();
        assert_eq!(policy.name(), "control:pi:set=0.8");
        // Context-free: builds for any (even empty) scenario.
        assert!(factory.build(&platform, &[]).is_ok());
        // Programmatically built degenerate knobs are caught by build and
        // validate, not panics.
        let degenerate = PolicyFactory::Control(ControlFactory::default().with_setpoint(2.0));
        assert!(degenerate.validate().is_err());
        assert!(degenerate.build(&platform, &apps).is_err());
    }
}
