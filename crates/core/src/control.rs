//! Closed-loop bandwidth scheduling: a PI feedback controller over the
//! engine's congestion telemetry.
//!
//! Every policy in the paper is *open-loop*: heuristics and periodic
//! schedules decide from static application models, so none of them can
//! react when the actual bandwidth pressure deviates from the plan
//! (external communication storms, disk-locality interference). The
//! control family closes the loop: the simulator's telemetry tap derives
//! a [`CongestionSignal`] from the observed offered/granted/delivered
//! bandwidths and hands it to the policy through
//! [`SchedContext::signal`]; a [`PiController`] tracks a *delivered
//! utilization* setpoint and throttles the granted budget, while
//! per-application [`TokenBucket`]s bound how long any one follower can
//! burst above its fair share. (See "Mitigating Shared Storage
//! Congestion Using Control Theory" in PAPERS.md for the approach this
//! follows.)
//!
//! ## The control law
//!
//! [`ControlPolicy`] observes the signal at every scheduling event:
//!
//! 1. **Uncongested bypass** — while the offered load fits the pipe
//!    (`contention ≤ 1`) there is nothing to control: every pending
//!    application is served through the shared [`greedy_allocate`] loop
//!    in most-behind-first order.
//! 2. **Sensing** — the delivered-utilization sample is smoothed by an
//!    exponential moving average with time constant `win` (the
//!    controller must not chase single inter-event intervals).
//! 3. **PI update** — the error `u − set` drives a clamped PI term whose
//!    output `c ∈ [0, 1]` scales the granted budget `c·B`. Under pure
//!    capacity congestion the pipe stays full (`u = 1 > set`), the
//!    output saturates at 1 and the policy degenerates to
//!    work-conserving most-behind-first — exactly the §3.1 greedy
//!    regime. When delivery falls below the setpoint while demand still
//!    exceeds capacity (disk-locality interference eating the delivered
//!    bandwidth), the budget shrinks, concurrent streams are shed and
//!    delivery recovers toward the setpoint.
//! 4. **Throttled grant** — the most-behind application is always
//!    granted its full card limit (the §3.1 "favoring" move, and the
//!    budget floor — the loop may serialize but never stall); followers
//!    are capped by their token buckets inside the budget; a final spill
//!    pass re-offers any leftover budget cap-free so the policy stays
//!    work-conserving *within the budget the controller chose*.
//!
//! All state advances only on observed `(now, signal)` pairs, so a
//! simulation driving this policy remains a deterministic function of
//! the scenario — reruns are bit-identical.

use crate::policy::{
    greedy_allocate, order_by_key_asc, order_into_by_key_asc, AllocScratch, Allocation, AppState,
    OnlinePolicy, SchedContext,
};
use iosched_model::{Bw, Bytes, Time};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Derived congestion measurement handed to policies via
/// [`SchedContext::signal`]. Produced by the simulator's telemetry tap
/// from the last completed inter-event interval; `None` in the context
/// means "no observation yet" (the initial allocation, or a driver
/// without telemetry) and policies fall back to estimating from the
/// pending set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CongestionSignal {
    /// Delivered bandwidth over the usable capacity, `∈ [0, 1]`. Under
    /// disk-locality interference this is *below* the granted fraction —
    /// the gap is what the controller reacts to. Defined as 1 when the
    /// capacity is zero (a fully blocked pipe is vacuously full).
    pub utilization: f64,
    /// Offered load (sum of card limits of the pending applications)
    /// over the usable capacity. `> 1` means the applications want more
    /// than the pipe can carry — the congestion regime. Defined as 0
    /// when the capacity is zero.
    pub contention: f64,
    /// Outstanding bytes across all pending applications.
    pub backlog: Bytes,
    /// Number of applications currently wanting I/O.
    pub pending: usize,
}

impl CongestionSignal {
    /// True while the offered load exceeds the usable capacity.
    #[must_use]
    pub fn is_congested(&self) -> bool {
        self.contention > 1.0 + 1e-9
    }

    /// Conservative estimate from a pending-set snapshot alone, used
    /// when no telemetry observation exists yet: assume the pipe fills
    /// up to the offered load (no interference knowledge).
    #[must_use]
    pub fn estimate(ctx: &SchedContext<'_>) -> Self {
        let offered: Bw = ctx.pending.iter().map(|a| a.max_bw).sum();
        let capacity = ctx.total_bw;
        let (utilization, contention) = if capacity.get() > 0.0 {
            let contention = (offered / capacity).max(0.0);
            (contention.min(1.0), contention)
        } else {
            (1.0, 0.0)
        };
        Self {
            utilization,
            contention,
            backlog: Bytes::ZERO,
            pending: ctx.pending.len(),
        }
    }
}

/// A clamped proportional–integral controller tracking a setpoint on a
/// measured value in `[0, 1]`; output in `[0, 1]` (1 = fully open).
///
/// The integral term carries conditional anti-windup: it is clamped so
/// its contribution never exceeds the full output range, which bounds
/// recovery time after a long saturation stretch.
#[derive(Debug, Clone)]
pub struct PiController {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain (per second of error).
    pub ki: f64,
    /// Target for the measured value.
    pub setpoint: f64,
    integral: f64,
}

impl PiController {
    /// A controller at rest (zero integral state).
    #[must_use]
    pub fn new(kp: f64, ki: f64, setpoint: f64) -> Self {
        Self {
            kp,
            ki,
            setpoint,
            integral: 0.0,
        }
    }

    /// Advance the controller by `dt` seconds with the new measurement
    /// and return the output: `clamp(1 + kp·e + ki·∫e, 0, 1)` with
    /// `e = measured − setpoint`. The bias of 1 starts the loop fully
    /// open, so the policy behaves like the greedy roster until the
    /// telemetry shows delivery falling short. The integral is clamped
    /// into `[-1/ki, 0]`: with the output biased fully open, positive
    /// windup could only delay the reaction to a congestion onset
    /// without ever changing the (already saturated) output.
    pub fn update(&mut self, measured: f64, dt: f64) -> f64 {
        let e = measured - self.setpoint;
        if self.ki > 0.0 && dt > 0.0 {
            self.integral = (self.integral + e * dt).clamp(-1.0 / self.ki, 0.0);
        }
        (1.0 + self.kp * e + self.ki * self.integral).clamp(0.0, 1.0)
    }

    /// Current integral state (inspection hook for tests).
    #[must_use]
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Drop the accumulated integral state (the loop re-opened: the
    /// congestion episode it was tracking is over).
    pub fn reset(&mut self) {
        self.integral = 0.0;
    }
}

/// Fluid token bucket bounding one follower's sustained bandwidth.
///
/// Tokens are bytes of "allowance": they refill at the fair sustained
/// rate and drain at the granted rate, clamped to a burst of one
/// window's worth. The admissible *rate* at any instant is
/// `refill + tokens/win` — a full bucket lets a follower burst to twice
/// its fair share (plus whatever the spill pass adds), an empty one
/// pins it to the sustained rate.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    /// Current allowance in bytes.
    tokens: f64,
    /// Rate granted at the previous event (drains the bucket over the
    /// elapsed interval).
    last_grant: f64,
}

impl TokenBucket {
    /// A bucket starting full for the given refill rate and window.
    #[must_use]
    pub fn full(refill: Bw, win: Time) -> Self {
        Self {
            tokens: (refill * win).get(),
            last_grant: 0.0,
        }
    }

    /// Advance by `dt` seconds: refill minus the previously granted
    /// drain, clamped into `[0, refill·win]`.
    pub fn advance(&mut self, refill: Bw, win: Time, dt: f64) {
        let burst = (refill * win).get().max(0.0);
        self.tokens = (self.tokens + (refill.get() - self.last_grant) * dt).clamp(0.0, burst);
    }

    /// Admissible rate right now.
    #[must_use]
    pub fn admissible(&self, refill: Bw, win: Time) -> Bw {
        let w = win.get().max(f64::MIN_POSITIVE);
        Bw::new(refill.get() + self.tokens / w)
    }

    /// Record the rate granted at this event (drained until the next
    /// observation).
    pub fn note_grant(&mut self, grant: Bw) {
        self.last_grant = grant.get();
    }

    /// Current allowance in bytes (inspection hook for tests).
    #[must_use]
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// The adaptive closed-loop policy: PI-throttled, token-bucket-shaped
/// most-behind-first scheduling (registry name `control:pi`, grammar
/// `control:pi[:kp=..][:ki=..][:set=..][:win=..]`).
#[derive(Debug, Clone)]
pub struct ControlPolicy {
    pi: PiController,
    /// Signal-smoothing window (EWMA time constant) and token-bucket
    /// burst horizon, in seconds.
    window: Time,
    /// Smoothed utilization observation (congested intervals only).
    smoothed: Option<f64>,
    /// Clock of the last allocation event (bucket/EWMA/PI time base).
    last_obs: Option<Time>,
    /// Whether the last observed interval was congested: the PI loop
    /// only accrues integral weight across *consecutive* congested
    /// observations, so benign demand-limited lulls carry no windup
    /// into the next storm.
    was_congested: bool,
    /// Last controller output (inspection hook; 1 until the first
    /// congested update).
    throttle: f64,
    /// Per-application burst allowances, keyed by `AppId` for
    /// deterministic iteration.
    buckets: BTreeMap<iosched_model::AppId, TokenBucket>,
    /// Reused snapshot for the capped grant pass.
    scratch: Vec<AppState>,
    name: String,
}

impl ControlPolicy {
    /// Default proportional gain.
    pub const DEFAULT_KP: f64 = 0.5;
    /// Default integral gain (per second).
    pub const DEFAULT_KI: f64 = 0.05;
    /// Default delivered-utilization setpoint.
    pub const DEFAULT_SETPOINT: f64 = 0.9;
    /// Default sensing window in seconds.
    pub const DEFAULT_WINDOW_SECS: f64 = 30.0;

    /// Build the controller with explicit gains. Callers are expected to
    /// have validated the gains (the registry grammar does); out-of-range
    /// values here are a programming error.
    ///
    /// # Panics
    /// Panics on non-finite or negative gains, a setpoint outside
    /// `(0, 1]`, or a non-positive window.
    #[must_use]
    pub fn new(kp: f64, ki: f64, setpoint: f64, window_secs: f64) -> Self {
        assert!(kp.is_finite() && kp >= 0.0, "kp must be finite and >= 0");
        assert!(ki.is_finite() && ki >= 0.0, "ki must be finite and >= 0");
        assert!(
            setpoint.is_finite() && setpoint > 0.0 && setpoint <= 1.0,
            "setpoint must be in (0, 1]"
        );
        assert!(
            window_secs.is_finite() && window_secs > 0.0,
            "window must be positive"
        );
        Self {
            pi: PiController::new(kp, ki, setpoint),
            window: Time::secs(window_secs),
            smoothed: None,
            last_obs: None,
            was_congested: false,
            throttle: 1.0,
            buckets: BTreeMap::new(),
            scratch: Vec::new(),
            name: "control:pi".into(),
        }
    }

    /// The default controller (`control:pi`).
    #[must_use]
    pub fn pi_default() -> Self {
        Self::new(
            Self::DEFAULT_KP,
            Self::DEFAULT_KI,
            Self::DEFAULT_SETPOINT,
            Self::DEFAULT_WINDOW_SECS,
        )
    }

    /// Override the report name (the registry labels instances with the
    /// factory's canonical name, e.g. `control:pi:kp=1`).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Last controller output (1 = budget fully open).
    #[must_use]
    pub fn throttle(&self) -> f64 {
        self.throttle
    }

    /// Observe a *congested* interval: EWMA-smooth the utilization and
    /// advance the PI loop by the elapsed congested time. Returns the
    /// budget fraction.
    ///
    /// Only congested observations feed the loop. Uncongested intervals
    /// are demand-limited — their low utilization says "the applications
    /// want little", not "the pipe under-delivers" — and integrating
    /// that error would wind the integral to its clamp during benign
    /// lulls, causing minutes of spurious hard throttling at the next
    /// congestion onset. `dt` is the caller-supplied span since the
    /// previous *congested* observation (zero when the last event was
    /// uncongested, so a lull never accrues integral weight).
    fn observe(&mut self, utilization: f64, dt: f64) -> f64 {
        let s = match self.smoothed {
            None => utilization,
            Some(prev) => {
                let alpha = 1.0 - (-dt / self.window.as_secs()).exp();
                prev + alpha * (utilization - prev)
            }
        };
        self.smoothed = Some(s);
        self.throttle = self.pi.update(s, dt);
        self.throttle
    }

    /// Merge two `AppId`-sorted grant lists (the bucket-capped pass and
    /// the spill pass) into one sorted, duplicate-free allocation.
    fn merge(a: Allocation, b: Allocation) -> Allocation {
        if b.grants.is_empty() {
            return a;
        }
        let mut grants = Vec::with_capacity(a.grants.len() + b.grants.len());
        let (mut i, mut j) = (0, 0);
        while i < a.grants.len() || j < b.grants.len() {
            match (a.grants.get(i), b.grants.get(j)) {
                (Some(&(ia, ba)), Some(&(ib, bb))) => {
                    if ia == ib {
                        grants.push((ia, ba + bb));
                        i += 1;
                        j += 1;
                    } else if ia < ib {
                        grants.push((ia, ba));
                        i += 1;
                    } else {
                        grants.push((ib, bb));
                        j += 1;
                    }
                }
                (Some(&g), None) => {
                    grants.push(g);
                    i += 1;
                }
                (None, Some(&g)) => {
                    grants.push(g);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        Allocation { grants }
    }

    /// The control law proper, shared by both allocation entry points;
    /// `order` is the most-behind-first permutation (however the caller
    /// computed it).
    fn allocate_with_order(&mut self, ctx: &SchedContext<'_>, order: &[usize]) -> Allocation {
        let signal = ctx
            .signal
            .unwrap_or_else(|| CongestionSignal::estimate(ctx));
        let dt_since = self
            .last_obs
            .map_or(0.0, |t| (ctx.now - t).as_secs().max(0.0));
        self.last_obs = Some(ctx.now);

        let n = ctx.pending.len();
        let refill = ctx.total_bw * (self.pi.setpoint / n as f64);
        // Drop buckets of applications that left the pending set (they
        // finished their transfer and went computing): when one returns
        // it re-enters below with a *full* bucket and a clean grant
        // history — an application that just finished computing has
        // earned its burst, and a stale `last_grant` from its previous
        // transfer must not keep draining it.
        self.buckets
            .retain(|id, _| ctx.pending.binary_search_by_key(id, |a| a.id).is_ok());
        // Advance every pending application's bucket by the elapsed
        // interval before reading allowances.
        for app in ctx.pending {
            self.buckets
                .entry(app.id)
                .or_insert_with(|| TokenBucket::full(refill, self.window))
                .advance(refill, self.window, dt_since);
        }

        if !signal.is_congested() {
            // Nothing to control: serve everyone, most-behind first. The
            // congestion episode the loop was tracking is over, so the
            // controller state is dropped — a *new* storm must start
            // from the open position and learn from its own delivery,
            // not inherit a deep integral (or a stale smoothed
            // utilization) from an episode that ended.
            self.was_congested = false;
            self.pi.reset();
            self.smoothed = None;
            self.throttle = 1.0;
            let alloc = greedy_allocate(ctx, order);
            for app in ctx.pending {
                if let Some(b) = self.buckets.get_mut(&app.id) {
                    b.note_grant(alloc.granted(app.id));
                }
            }
            return alloc;
        }

        let pi_dt = if self.was_congested { dt_since } else { 0.0 };
        self.was_congested = true;
        let c = self.observe(signal.utilization, pi_dt);

        // Congested: grant inside the PI budget. The most-behind
        // application always fits whole (budget floor = its card limit),
        // so the loop can serialize but never stall the system.
        let head = &ctx.pending[order[0]];
        let budget = (ctx.total_bw * c).max(head.max_bw).min(ctx.total_bw);

        // Pass 1 — bucket-capped greedy within the budget.
        self.scratch.clear();
        for (k, app) in ctx.pending.iter().enumerate() {
            let capped = if order[0] == k {
                app.max_bw
            } else {
                let allowance = self.buckets[&app.id].admissible(refill, self.window);
                app.max_bw.min(allowance)
            };
            self.scratch.push(AppState {
                max_bw: capped,
                ..*app
            });
        }
        let capped_ctx = SchedContext {
            now: ctx.now,
            total_bw: budget,
            pending: &self.scratch,
            signal: ctx.signal,
        };
        let first = greedy_allocate(&capped_ctx, order);

        // Pass 2 — spill: whatever budget the caps left unused is
        // re-offered cap-free in the same order (work conservation
        // within the chosen budget).
        let leftover = (budget - first.total()).snap_zero();
        let alloc = if leftover.get() > 0.0 {
            self.scratch.clear();
            for app in ctx.pending {
                self.scratch.push(AppState {
                    max_bw: (app.max_bw - first.granted(app.id)).max(Bw::ZERO),
                    ..*app
                });
            }
            let spill_ctx = SchedContext {
                now: ctx.now,
                total_bw: leftover,
                pending: &self.scratch,
                signal: ctx.signal,
            };
            let spill = greedy_allocate(&spill_ctx, order);
            Self::merge(first, spill)
        } else {
            first
        };
        for app in ctx.pending {
            if let Some(b) = self.buckets.get_mut(&app.id) {
                b.note_grant(alloc.granted(app.id));
            }
        }
        alloc
    }
}

impl OnlinePolicy for ControlPolicy {
    fn name(&self) -> String {
        self.name.clone()
    }

    /// Most-behind-first: ascending `ρ̃/ρ`, ties by `AppId`.
    fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
        order_by_key_asc(ctx, |a| a.dilation_ratio)
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> Allocation {
        if ctx.pending.is_empty() {
            return Allocation::empty();
        }
        let order = self.order(ctx);
        self.allocate_with_order(ctx, &order)
    }

    fn order_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        order_into_by_key_asc(ctx, scratch, |a| a.dilation_ratio);
    }

    fn allocate_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        if ctx.pending.is_empty() {
            scratch.alloc.grants.clear();
            return;
        }
        self.order_into(ctx, scratch);
        scratch.alloc = self.allocate_with_order(ctx, scratch.order());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::{app, ctx};
    use iosched_model::AppId;

    fn signal(utilization: f64, contention: f64) -> CongestionSignal {
        CongestionSignal {
            utilization,
            contention,
            backlog: Bytes::ZERO,
            pending: 2,
        }
    }

    #[test]
    fn pi_output_saturates_open_above_the_setpoint() {
        let mut pi = PiController::new(0.5, 0.05, 0.9);
        // Pipe full: stays wide open.
        for _ in 0..100 {
            assert_eq!(pi.update(1.0, 10.0), 1.0);
        }
        // Integral is clamped, so recovery is immediate once the error
        // flips sign hard.
        assert!(pi.update(0.2, 10.0) < 1.0);
    }

    #[test]
    fn pi_closes_under_sustained_underdelivery() {
        let mut pi = PiController::new(0.5, 0.05, 0.9);
        let mut out = 1.0;
        for _ in 0..200 {
            out = pi.update(0.5, 5.0);
        }
        assert!(out < 0.2, "sustained u=0.5 must throttle hard, got {out}");
        // And a recovered plant re-opens the loop.
        for _ in 0..200 {
            out = pi.update(1.0, 5.0);
        }
        assert!(out > 0.9, "recovered u=1.0 must re-open, got {out}");
    }

    #[test]
    fn token_bucket_bounds_sustained_rate() {
        let refill = Bw::gib_per_sec(1.0);
        let win = Time::secs(10.0);
        let mut b = TokenBucket::full(refill, win);
        // Full bucket: admissible rate is refill + burst/win = 2×refill.
        assert!(b.admissible(refill, win).approx_eq(Bw::gib_per_sec(2.0)));
        // Burst at 2 GiB/s for 10 s drains it to empty.
        b.note_grant(Bw::gib_per_sec(2.0));
        b.advance(refill, win, 10.0);
        assert!(b.tokens() < 1e-6);
        assert!(b.admissible(refill, win).approx_eq(refill));
        // Idling for a window refills it completely.
        b.note_grant(Bw::ZERO);
        b.advance(refill, win, 10.0);
        assert!(b.admissible(refill, win).approx_eq(Bw::gib_per_sec(2.0)));
    }

    #[test]
    fn uncongested_bypass_equals_plain_greedy() {
        let pending = [app(0, 3.0), app(1, 3.0)];
        let mut c = ctx(10.0, &pending);
        c.signal = Some(signal(0.6, 0.6));
        let mut policy = ControlPolicy::pi_default();
        let alloc = policy.allocate(&c);
        alloc.validate(&c).unwrap();
        // Demand fits: everyone gets its card limit.
        assert!(alloc.granted(AppId(0)).approx_eq(Bw::gib_per_sec(3.0)));
        assert!(alloc.granted(AppId(1)).approx_eq(Bw::gib_per_sec(3.0)));
    }

    #[test]
    fn congested_allocation_favors_the_most_behind_and_stays_valid() {
        let mut a0 = app(0, 10.0);
        a0.dilation_ratio = 0.9;
        let mut a1 = app(1, 10.0);
        a1.dilation_ratio = 0.2; // far behind
        let pending = [a0, a1];
        let mut c = ctx(10.0, &pending);
        c.signal = Some(signal(1.0, 2.0));
        let mut policy = ControlPolicy::pi_default();
        let alloc = policy.allocate(&c);
        alloc.validate(&c).unwrap();
        // Head gets the full pipe (its card limit covers B).
        assert!(alloc.granted(AppId(1)).approx_eq(c.total_bw));
        assert!(alloc.granted(AppId(0)).is_zero());
    }

    #[test]
    fn budget_is_work_conserving_when_the_loop_is_open() {
        // u at the saturated pipe keeps the controller open: the whole
        // capacity is granted even though the head cannot absorb it.
        let pending = [app(0, 4.0), app(1, 4.0), app(2, 4.0)];
        let mut c = ctx(10.0, &pending);
        c.signal = Some(signal(1.0, 1.2));
        let mut policy = ControlPolicy::pi_default();
        let alloc = policy.allocate(&c);
        alloc.validate(&c).unwrap();
        assert!(
            alloc.total().approx_eq(c.total_bw),
            "open loop must fill the pipe, granted {}",
            alloc.total()
        );
    }

    #[test]
    fn sustained_underdelivery_serializes_down_to_the_head() {
        let mut policy = ControlPolicy::pi_default();
        let pending = [app(0, 10.0), app(1, 10.0), app(2, 10.0)];
        // Repeated congested events where only half the granted bandwidth
        // is delivered: the budget must shrink toward the head's grant.
        let mut last = Allocation::empty();
        for step in 0..400 {
            let mut c = ctx(10.0, &pending);
            c.now = Time::secs(100.0 + step as f64 * 5.0);
            c.signal = Some(signal(0.5, 3.0));
            last = policy.allocate(&c);
            last.validate(&c).unwrap();
        }
        assert!(policy.throttle() < 0.1, "throttle {}", policy.throttle());
        // Head (ties break by id → app 0) still runs at full card limit.
        assert!(last.granted(AppId(0)).approx_eq(Bw::gib_per_sec(10.0)));
        // Everyone else was shed.
        assert!(last.granted(AppId(1)).is_zero());
        assert!(last.granted(AppId(2)).is_zero());
    }

    /// Regression: demand-limited lulls (uncongested, low utilization)
    /// must not wind the integral down — the first event of the next
    /// storm starts with the loop fully open, not minutes of spurious
    /// serialization.
    #[test]
    fn benign_lulls_do_not_wind_up_the_loop() {
        let mut policy = ControlPolicy::pi_default();
        let lone = [app(0, 2.0)];
        for step in 0..200 {
            let mut c = ctx(10.0, &lone);
            c.now = Time::secs(step as f64 * 10.0);
            c.signal = Some(signal(0.2, 0.2)); // demand-limited idle pipe
            policy.allocate(&c).validate(&c).unwrap();
        }
        // Storm onset: the whole capacity is granted immediately.
        let storm = [app(0, 10.0), app(1, 10.0), app(2, 10.0)];
        let mut c = ctx(10.0, &storm);
        c.now = Time::secs(3_000.0);
        c.signal = Some(signal(1.0, 3.0));
        let alloc = policy.allocate(&c);
        alloc.validate(&c).unwrap();
        assert!(
            policy.throttle() > 0.9,
            "lull wound up the loop: throttle {}",
            policy.throttle()
        );
        assert!(alloc.total().approx_eq(c.total_bw));
    }

    /// Regression: the integral wound up by one storm must not carry
    /// into the next — after the loop re-opens (any uncongested
    /// observation), a new, healthy congestion episode starts from the
    /// open position.
    #[test]
    fn controller_state_resets_between_congestion_episodes() {
        let mut policy = ControlPolicy::pi_default();
        let pending = [app(0, 10.0), app(1, 10.0), app(2, 10.0)];
        // Storm A: sustained under-delivery throttles the loop hard.
        for step in 0..400 {
            let mut c = ctx(10.0, &pending);
            c.now = Time::secs(step as f64 * 5.0);
            c.signal = Some(signal(0.5, 3.0));
            policy.allocate(&c).validate(&c).unwrap();
        }
        assert!(policy.throttle() < 0.1);
        // The lull between episodes re-opens the loop.
        let mut c = ctx(10.0, &pending[..1]);
        c.now = Time::secs(2_100.0);
        c.signal = Some(signal(0.1, 0.1));
        policy.allocate(&c).validate(&c).unwrap();
        // Storm B delivers perfectly: it must start fully open, not
        // spend minutes unwinding storm A's integral.
        let mut c = ctx(10.0, &pending);
        c.now = Time::secs(2_110.0);
        c.signal = Some(signal(1.0, 3.0));
        let alloc = policy.allocate(&c);
        alloc.validate(&c).unwrap();
        assert!(
            policy.throttle() > 0.9,
            "storm A's integral leaked into storm B: throttle {}",
            policy.throttle()
        );
        assert!(alloc.total().approx_eq(c.total_bw));
    }

    /// Regression: an application that leaves the pending set (finished
    /// its transfer, went computing) gets its bucket dropped, so it
    /// returns with a full burst and no stale grant history draining it.
    #[test]
    fn buckets_reset_when_an_application_leaves_pending() {
        let mut policy = ControlPolicy::pi_default();
        // app 0 (most behind, small card) heads; app 1 spills above its
        // fair share and drains its bucket over repeated intervals.
        let mut a0 = app(0, 4.0);
        a0.dilation_ratio = 0.1;
        let both = [a0, app(1, 10.0)];
        for step in 0..20 {
            let mut c = ctx(10.0, &both);
            c.now = Time::secs(step as f64 * 10.0);
            c.signal = Some(signal(1.0, 1.4));
            policy.allocate(&c).validate(&c).unwrap();
        }
        let refill = Bw::gib_per_sec(10.0 * ControlPolicy::DEFAULT_SETPOINT / 2.0);
        let burst = (refill * policy.window).get();
        let drained = policy.buckets[&iosched_model::AppId(1)].tokens();
        assert!(drained < burst, "follower over fair share must drain");
        // App 1 leaves the pending set: its bucket is dropped…
        let mut c = ctx(10.0, &both[..1]);
        c.now = Time::secs(210.0);
        c.signal = Some(signal(1.0, 1.4));
        policy.allocate(&c).validate(&c).unwrap();
        assert_eq!(policy.buckets.len(), 1);
        // …and on return it starts with a full, freshly-sized burst.
        let mut c = ctx(10.0, &both);
        c.now = Time::secs(220.0);
        c.signal = Some(signal(1.0, 1.4));
        policy.allocate(&c).validate(&c).unwrap();
        let back = policy.buckets[&iosched_model::AppId(1)].tokens();
        assert!(
            (back - burst).abs() < 1e-9,
            "returning app bucket {back} should be the full burst {burst}"
        );
    }

    #[test]
    fn allocation_is_deterministic_across_reruns() {
        let run = || {
            let mut policy = ControlPolicy::pi_default();
            let mut bits = Vec::new();
            for step in 0..50 {
                let mut a0 = app(0, 6.0);
                a0.dilation_ratio = 0.5;
                let pending = [a0, app(1, 6.0), app(2, 6.0)];
                let mut c = ctx(10.0, &pending);
                c.now = Time::secs(step as f64 * 3.0);
                c.signal = Some(signal(0.7 + 0.001 * step as f64, 1.8));
                let alloc = policy.allocate(&c);
                for (id, bw) in &alloc.grants {
                    bits.push((id.0, bw.get().to_bits()));
                }
            }
            bits
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fallback_estimate_is_used_without_telemetry() {
        // No signal in the context: the policy estimates contention from
        // the card limits and still produces a valid allocation.
        let pending = [app(0, 10.0), app(1, 10.0)];
        let c = ctx(10.0, &pending);
        let est = CongestionSignal::estimate(&c);
        assert!(est.is_congested());
        assert_eq!(est.utilization, 1.0);
        let mut policy = ControlPolicy::pi_default();
        let alloc = policy.allocate(&c);
        alloc.validate(&c).unwrap();
        assert!(alloc.total().approx_eq(c.total_bw));
    }

    #[test]
    #[should_panic(expected = "setpoint")]
    fn constructor_rejects_bad_setpoint() {
        let _ = ControlPolicy::new(0.5, 0.05, 2.0, 30.0);
    }
}
