//! Executable form of **Theorem 1** (§3.2.2): finding a periodic schedule
//! optimizing either objective is NP-complete, by reduction from
//! 3-Partition.
//!
//! Given an instance `I₁` of 3-Partition — an integer `B` and `3n` integers
//! `a_1 … a_3n` with `Σ a_i = nB` — the proof builds a scheduling instance
//! `I₂` with PFS bandwidth `B·b` and, for each item `a_k`, an application
//!
//! ```text
//! β(k) = a_k,   w(k) = n − 1,   vol_io(k) = a_k·b   (so time_io(k) = 1)
//! ```
//!
//! `I₁` is solvable iff `I₂` admits a periodic schedule of period `T = n`
//! with `ρ̃(k) = ρ(k)` for all `k` (SysEfficiency `= (n−1)/n`, Dilation
//! `= 1`): each triplet of sum `B` occupies one unit-length I/O slot at full
//! per-processor bandwidth, and the `n−1` remaining units hold the compute.
//!
//! The proof schedule wraps compute chunks around the period boundary, a
//! shape the general [`crate::periodic::PeriodicSchedule`] deliberately
//! does not represent; this module therefore carries its own slot-based
//! representation ([`ProofSchedule`]) and verifier, plus a brute-force
//! 3-Partition solver for small instances so both directions of the
//! reduction are tested.

use crate::periodic::PeriodicAppSpec;
use iosched_model::{Bw, Bytes, ModelError, Platform, Time};
use serde::{Deserialize, Serialize};

/// A 3-Partition instance: can `items` (of sum `n·target`) be split into
/// `n` triplets each of sum `target`?
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreePartition {
    target: u64,
    items: Vec<u64>,
}

impl ThreePartition {
    /// Validate and build an instance.
    pub fn new(target: u64, items: Vec<u64>) -> Result<Self, ModelError> {
        if target == 0 {
            return Err(ModelError::InvalidApp(
                "3-Partition target must be positive".into(),
            ));
        }
        if items.is_empty() || !items.len().is_multiple_of(3) {
            return Err(ModelError::InvalidApp(format!(
                "3-Partition needs a positive multiple of 3 items, got {}",
                items.len()
            )));
        }
        if items.iter().any(|&a| a == 0 || a > target) {
            return Err(ModelError::InvalidApp(
                "3-Partition items must satisfy 0 < a_i ≤ B".into(),
            ));
        }
        let n = (items.len() / 3) as u64;
        let sum: u64 = items.iter().sum();
        if sum != n * target {
            return Err(ModelError::InvalidApp(format!(
                "Σ a_i = {sum} must equal n·B = {}",
                n * target
            )));
        }
        Ok(Self { target, items })
    }

    /// `B`.
    #[must_use]
    pub fn target(&self) -> u64 {
        self.target
    }

    /// `n` (number of triplets).
    #[must_use]
    pub fn n(&self) -> usize {
        self.items.len() / 3
    }

    /// The items `a_1 … a_3n`.
    #[must_use]
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    /// Exhaustive backtracking solver; intended for `n ≤ 5`. Returns the
    /// triplets (as item indices) or `None` when the instance is
    /// infeasible.
    #[must_use]
    pub fn brute_force(&self) -> Option<Vec<[usize; 3]>> {
        let n = self.n();
        // Items sorted descending for better pruning; remember indices.
        let mut order: Vec<usize> = (0..self.items.len()).collect();
        order.sort_by(|&x, &y| self.items[y].cmp(&self.items[x]).then(x.cmp(&y)));

        let mut bins_sum = vec![0u64; n];
        let mut bins_cnt = vec![0usize; n];
        let mut assignment = vec![usize::MAX; self.items.len()];

        fn place(
            pos: usize,
            order: &[usize],
            items: &[u64],
            target: u64,
            bins_sum: &mut [u64],
            bins_cnt: &mut [usize],
            assignment: &mut [usize],
        ) -> bool {
            if pos == order.len() {
                return bins_sum.iter().all(|&s| s == target);
            }
            let item = order[pos];
            let a = items[item];
            for b in 0..bins_sum.len() {
                // Symmetry pruning: identical (sum, count) bins are
                // interchangeable — only try the first of each class.
                if (0..b).any(|p| bins_sum[p] == bins_sum[b] && bins_cnt[p] == bins_cnt[b]) {
                    continue;
                }
                if bins_cnt[b] == 3 || bins_sum[b] + a > target {
                    continue;
                }
                bins_sum[b] += a;
                bins_cnt[b] += 1;
                assignment[item] = b;
                if place(
                    pos + 1,
                    order,
                    items,
                    target,
                    bins_sum,
                    bins_cnt,
                    assignment,
                ) {
                    return true;
                }
                bins_sum[b] -= a;
                bins_cnt[b] -= 1;
                assignment[item] = usize::MAX;
            }
            false
        }

        if !place(
            0,
            &order,
            &self.items,
            self.target,
            &mut bins_sum,
            &mut bins_cnt,
            &mut assignment,
        ) {
            return None;
        }
        let mut triplets: Vec<Vec<usize>> = vec![Vec::with_capacity(3); n];
        for (item, &bin) in assignment.iter().enumerate() {
            triplets[bin].push(item);
        }
        Some(
            triplets
                .into_iter()
                .map(|t| {
                    let mut arr = [0usize; 3];
                    arr.copy_from_slice(&t);
                    arr
                })
                .collect(),
        )
    }

    /// The Theorem 1 reduction `I₁ → I₂`: a platform with PFS bandwidth
    /// `B·b` and one application per item (`β = a_k`, `w = n−1`,
    /// `vol = a_k·b·1s` so `time_io = 1`).
    #[must_use]
    pub fn to_scheduling_instance(&self, unit_bw: Bw) -> (Platform, Vec<PeriodicAppSpec>) {
        let n = self.n();
        let total_procs: u64 = self.items.iter().sum();
        let platform = Platform::new(
            format!("3partition-n{n}-b{}", self.target),
            total_procs,
            unit_bw,
            Bw::new(unit_bw.get() * self.target as f64),
        );
        let apps = self
            .items
            .iter()
            .enumerate()
            .map(|(k, &a)| {
                PeriodicAppSpec::new(
                    k,
                    a,
                    Time::secs(n as f64 - 1.0),
                    Bytes::new(a as f64 * unit_bw.get()), // transfers in 1 s at β·b
                )
            })
            .collect();
        (platform, apps)
    }

    /// Build the proof's period-`n` schedule from a partition: the
    /// applications of triplet `i` perform their I/O during slot
    /// `[i, i+1)` and compute during the other `n−1` units (wrapping).
    ///
    /// # Panics
    /// Panics if `partition` is not a permutation of the items in
    /// triplets.
    #[must_use]
    pub fn schedule_from_partition(&self, partition: &[[usize; 3]]) -> ProofSchedule {
        assert_eq!(partition.len(), self.n(), "partition must have n triplets");
        let mut slot_of = vec![usize::MAX; self.items.len()];
        for (slot, triplet) in partition.iter().enumerate() {
            for &item in triplet {
                assert!(slot_of[item] == usize::MAX, "item {item} assigned twice");
                slot_of[item] = slot;
            }
        }
        assert!(
            slot_of.iter().all(|&s| s != usize::MAX),
            "partition must cover all items"
        );
        ProofSchedule {
            n: self.n(),
            target: self.target,
            items: self.items.clone(),
            slot_of,
        }
    }
}

/// The wrapped, slot-based periodic schedule used by the Theorem 1 proof:
/// period `T = n`; application `k` transfers during `[slot_of[k],
/// slot_of[k]+1)` at bandwidth `a_k·b` and computes during the remaining
/// `n−1` units, wrapping around the period boundary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProofSchedule {
    n: usize,
    target: u64,
    items: Vec<u64>,
    slot_of: Vec<usize>,
}

impl ProofSchedule {
    /// Period `T = n`.
    #[must_use]
    pub fn period(&self) -> Time {
        Time::secs(self.n as f64)
    }

    /// I/O slot of item `k`.
    #[must_use]
    pub fn slot_of(&self, k: usize) -> usize {
        self.slot_of[k]
    }

    /// Verify the §3.2.2 argument:
    /// * every slot's aggregate demand `Σ_{k in slot} a_k·b ≤ B·b`
    ///   (equality when the partition is exact),
    /// * every application runs exactly one instance per period
    ///   (`n_per = 1`, `w = n−1`, `time_io = 1` → `ρ̃ = ρ = (n−1)/n`).
    ///
    /// Returns the schedule's Dilation (1.0 when valid).
    pub fn verify(&self) -> Result<f64, ModelError> {
        let mut slot_sum = vec![0u64; self.n];
        for (k, &slot) in self.slot_of.iter().enumerate() {
            if slot >= self.n {
                return Err(ModelError::InvalidSchedule(format!(
                    "item {k} assigned to slot {slot} ≥ n = {}",
                    self.n
                )));
            }
            slot_sum[slot] += self.items[k];
        }
        for (slot, &sum) in slot_sum.iter().enumerate() {
            if sum > self.target {
                return Err(ModelError::InvalidSchedule(format!(
                    "slot {slot} aggregates {sum} > B = {}",
                    self.target
                )));
            }
        }
        // Each app: I/O occupies 1 unit at full rate, compute the other
        // n−1 units → exactly one instance per period, zero stall:
        // ρ̃ = (n−1)/n = ρ, dilation 1.
        Ok(1.0)
    }

    /// SysEfficiency of the proof schedule: `(n−1)/n` (every processor
    /// computes during all but the I/O unit).
    #[must_use]
    pub fn sys_efficiency(&self) -> f64 {
        (self.n as f64 - 1.0) / self.n as f64
    }

    /// Recover a 3-Partition certificate from the schedule: group items by
    /// slot; a valid dilation-1 schedule yields triplets of sum exactly
    /// `B` (the forward direction of the equivalence). Returns `None` when
    /// any slot does not hold exactly 3 items of sum `B`.
    #[must_use]
    pub fn extract_partition(&self) -> Option<Vec<[usize; 3]>> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for (k, &slot) in self.slot_of.iter().enumerate() {
            groups[slot].push(k);
        }
        let mut out = Vec::with_capacity(self.n);
        for g in groups {
            if g.len() != 3 {
                return None;
            }
            let sum: u64 = g.iter().map(|&k| self.items[k]).sum();
            if sum != self.target {
                return None;
            }
            out.push([g[0], g[1], g[2]]);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// B = 12, n = 4: feasible — (4,4,4), (5,4,3), (6,4,2), (7,3,2).
    fn feasible() -> ThreePartition {
        ThreePartition::new(12, vec![4, 4, 4, 5, 4, 3, 6, 4, 2, 7, 3, 2]).unwrap()
    }

    /// B = 20, n = 2: infeasible — no triple containing two 10s fits and
    /// three 10s overshoot; {10,4,3} undershoots.
    fn infeasible() -> ThreePartition {
        ThreePartition::new(20, vec![10, 10, 10, 4, 3, 3]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(ThreePartition::new(0, vec![1, 1, 1]).is_err());
        assert!(ThreePartition::new(3, vec![1, 1]).is_err());
        assert!(ThreePartition::new(3, vec![1, 1, 2]).is_err()); // sum 4 ≠ 3
        assert!(ThreePartition::new(3, vec![0, 1, 2]).is_err()); // zero item
        assert!(ThreePartition::new(3, vec![1, 1, 1]).is_ok());
        assert!(ThreePartition::new(3, vec![4, 1, 1]).is_err()); // item > B
    }

    #[test]
    fn brute_force_solves_feasible_instance() {
        let inst = feasible();
        let sol = inst.brute_force().expect("instance is feasible");
        assert_eq!(sol.len(), 4);
        for triplet in &sol {
            let sum: u64 = triplet.iter().map(|&k| inst.items()[k]).sum();
            assert_eq!(sum, 12);
        }
        // Every item used exactly once.
        let mut used: Vec<usize> = sol.iter().flatten().copied().collect();
        used.sort_unstable();
        assert_eq!(used, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn brute_force_rejects_infeasible_instance() {
        assert!(infeasible().brute_force().is_none());
    }

    #[test]
    fn reduction_produces_unit_io_times() {
        let inst = feasible();
        let b = Bw::gib_per_sec(0.1);
        let (platform, apps) = inst.to_scheduling_instance(b);
        platform.validate().unwrap();
        assert_eq!(apps.len(), 12);
        for app in &apps {
            // time_io = vol / min(β·b, B·b) = a·b / (a·b) = 1 (a ≤ B).
            let tio = app.time_io(&platform);
            assert!(
                tio.approx_eq(Time::secs(1.0)),
                "time_io must be 1, got {tio}"
            );
            assert!(app.work.approx_eq(Time::secs(3.0))); // n − 1
        }
    }

    #[test]
    fn forward_direction_partition_gives_dilation_one_schedule() {
        let inst = feasible();
        let sol = inst.brute_force().unwrap();
        let sched = inst.schedule_from_partition(&sol);
        let dilation = sched.verify().unwrap();
        assert_eq!(dilation, 1.0);
        assert!((sched.sys_efficiency() - 0.75).abs() < 1e-12); // (n−1)/n
        assert!(sched.period().approx_eq(Time::secs(4.0)));
    }

    #[test]
    fn backward_direction_schedule_gives_partition() {
        let inst = feasible();
        let sol = inst.brute_force().unwrap();
        let sched = inst.schedule_from_partition(&sol);
        let recovered = sched.extract_partition().expect("valid schedule");
        // The recovered triplets must again solve the instance.
        for triplet in &recovered {
            let sum: u64 = triplet.iter().map(|&k| inst.items()[k]).sum();
            assert_eq!(sum, inst.target());
        }
    }

    #[test]
    fn overloaded_slot_fails_verification() {
        let inst = feasible();
        let sol = inst.brute_force().unwrap();
        let mut sched = inst.schedule_from_partition(&sol);
        // Cram one extra item into slot 0.
        let victim = sol[1][0];
        sched.slot_of[victim] = 0;
        assert!(sched.verify().is_err());
        assert!(sched.extract_partition().is_none());
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_assignment_panics() {
        let inst = feasible();
        let mut sol = inst.brute_force().unwrap();
        sol[0][1] = sol[0][0];
        let _ = inst.schedule_from_partition(&sol);
    }
}
