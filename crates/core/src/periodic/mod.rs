//! The periodic scheduler of §3.2.
//!
//! A periodic schedule of period `T` repeats the same bandwidth assignments
//! every `T` units of time; the first and last periods (initialization and
//! clean-up) differ but have negligible impact when many periods run, so
//! the steady-state application efficiency is `ρ̃(k) = n_per(k)·w(k)/T`
//! (equation (1) of the paper).
//!
//! Computing an optimal periodic schedule is NP-complete for both
//! objectives (Theorem 1, see [`crate::three_partition`]); the paper
//! therefore searches over periods `T₀·(1+ε)^i` and fills each candidate
//! period greedily ([`ScheduleBuilder`]) under one of two orders
//! ([`InsertionHeuristic`]).

mod builder;
mod heuristics;
mod profile;
mod schedule;
mod search;
mod timetable;

pub use builder::{PeriodicAppSpec, ScheduleBuilder};
pub use heuristics::{build_schedule, InsertionHeuristic};
pub use profile::BandwidthProfile;
pub use schedule::{
    AppPlan, PeriodicAppOutcome, PeriodicSchedule, PlannedInstance, SteadyStateReport,
};
pub use search::{PeriodSearch, PeriodicObjective, SearchResult};
pub use timetable::TimetablePolicy;
