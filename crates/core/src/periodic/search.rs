//! The `(1+ε)` period search of §3.2.3.
//!
//! "The first decision is to choose the length T of the period. We start
//! from `T = max_k (w(k) + time_io(k))`; while T is smaller than Tmax, the
//! period is incremented by a factor (1+ε), and a solution is re-computed.
//! We take the best solution over all the periods."

use super::builder::PeriodicAppSpec;
use super::heuristics::{build_schedule, InsertionHeuristic};
use super::schedule::{PeriodicSchedule, SteadyStateReport};
use iosched_model::{Platform, Time};
use serde::{Deserialize, Serialize};

/// Which steady-state objective the search optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeriodicObjective {
    /// Maximize `(1/N) Σ β·ρ̃`.
    SysEfficiency,
    /// Minimize `max_k ρ/ρ̃`.
    Dilation,
}

/// Search configuration. "Both ε and Tmax are parameters whose definitions
/// have an impact on the quality of the results and on the number of
/// increments: the larger Tmax and the smaller ε, the better the results,
/// but the longer the execution time."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodSearch {
    /// Multiplicative step between candidate periods.
    pub epsilon: f64,
    /// `Tmax = max_factor · T₀`.
    pub max_factor: f64,
    /// Objective guiding the choice among candidate periods.
    pub objective: PeriodicObjective,
}

impl PeriodSearch {
    /// Paper-flavoured default ε.
    pub const DEFAULT_EPSILON: f64 = 0.05;
    /// Paper-flavoured default `Tmax/T₀`.
    pub const DEFAULT_MAX_FACTOR: f64 = 10.0;

    /// Paper-flavoured defaults: ε = 0.05, Tmax = 10·T₀.
    #[must_use]
    pub fn new(objective: PeriodicObjective) -> Self {
        Self {
            epsilon: Self::DEFAULT_EPSILON,
            max_factor: Self::DEFAULT_MAX_FACTOR,
            objective,
        }
    }

    /// Override ε.
    ///
    /// # Panics
    /// Panics unless `ε > 0`.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        self.epsilon = epsilon;
        self
    }

    /// Override `Tmax/T₀`.
    ///
    /// # Panics
    /// Panics unless `max_factor ≥ 1`.
    #[must_use]
    pub fn with_max_factor(mut self, max_factor: f64) -> Self {
        assert!(max_factor >= 1.0, "max_factor must be at least 1");
        self.max_factor = max_factor;
        self
    }

    /// `T₀ = max_k (w + time_io)`: the smallest candidate period ("it
    /// makes sense to consider only periods large enough so that one
    /// instance of each application can take place if there were no
    /// contention"). Zero for an empty application set.
    #[must_use]
    pub fn t0(platform: &Platform, apps: &[PeriodicAppSpec]) -> Time {
        apps.iter()
            .map(|a| a.span(platform))
            .fold(Time::ZERO, Time::max)
    }

    /// How many candidate periods [`PeriodSearch::run`] will evaluate for
    /// `apps` on `platform` — the same `(1+ε)` progression, without
    /// building any schedule. Used by reports that quote search cost
    /// (e.g. the ε ablation) next to campaign-simulated quality.
    #[must_use]
    pub fn candidate_count(&self, platform: &Platform, apps: &[PeriodicAppSpec]) -> usize {
        if apps.is_empty() {
            return 0;
        }
        self.candidate_periods(Self::t0(platform, apps)).count()
    }

    /// The `(1+ε)` candidate-period progression, shared by
    /// [`PeriodSearch::candidate_count`] and the search loop so the two
    /// can never drift. Ends at `Tmax` — and, defensively, right after a
    /// period the progression fails to grow past (an ε small enough that
    /// `1 + ε` rounds to 1), so no caller can loop forever on degenerate
    /// knobs.
    fn candidate_periods(&self, t0: Time) -> impl Iterator<Item = Time> {
        let t_max = t0 * self.max_factor;
        let epsilon = self.epsilon;
        let mut period = t0;
        let mut stalled = false;
        std::iter::from_fn(move || {
            if stalled || !period.approx_le(t_max) {
                return None;
            }
            let current = period;
            let next = period * (1.0 + epsilon);
            stalled = next.get() <= period.get();
            period = next;
            Some(current)
        })
    }

    /// Run the search with `heuristic` filling each candidate period.
    ///
    /// Returns `None` only for an empty application set.
    #[must_use]
    pub fn run(
        &self,
        platform: &Platform,
        apps: &[PeriodicAppSpec],
        heuristic: InsertionHeuristic,
    ) -> Option<SearchResult> {
        self.run_with(platform, apps, heuristic, false)
    }

    /// Like [`PeriodSearch::run`], but only *complete* candidates —
    /// schedules giving every application at least one instance per
    /// period — compete; returns `None` for an empty set or when every
    /// candidate starves someone. The Dilation objective avoids starving
    /// schedules by itself (a starved application has infinite
    /// dilation), but SysEfficiency happily trades a small application's
    /// existence for aggregate throughput — unacceptable when the winner
    /// is to be *executed* (a timetable that never grants an application
    /// cannot terminate), which is why the scenario-aware registry
    /// builds through this entry point.
    #[must_use]
    pub fn run_complete(
        &self,
        platform: &Platform,
        apps: &[PeriodicAppSpec],
        heuristic: InsertionHeuristic,
    ) -> Option<SearchResult> {
        self.run_with(platform, apps, heuristic, true)
    }

    fn run_with(
        &self,
        platform: &Platform,
        apps: &[PeriodicAppSpec],
        heuristic: InsertionHeuristic,
        skip_starved: bool,
    ) -> Option<SearchResult> {
        if apps.is_empty() {
            return None;
        }
        let t0 = Self::t0(platform, apps);
        debug_assert!(t0.get() > 0.0, "validated apps have positive span");

        let mut best: Option<SearchResult> = None;
        let mut candidates = 0_usize;
        for period in self.candidate_periods(t0) {
            let schedule = build_schedule(platform, apps, period, heuristic);
            candidates += 1;
            if skip_starved && schedule.plans.iter().any(|p| p.n_per() == 0) {
                continue;
            }
            let report = schedule.steady_state(platform);
            let better = match &best {
                None => true,
                Some(b) => match self.objective {
                    PeriodicObjective::SysEfficiency => {
                        report.sys_efficiency > b.report.sys_efficiency
                    }
                    PeriodicObjective::Dilation => report.dilation < b.report.dilation,
                },
            };
            if better {
                best = Some(SearchResult {
                    schedule,
                    report,
                    candidates_tried: candidates,
                });
            }
        }
        if let Some(b) = &mut best {
            b.candidates_tried = candidates;
        }
        best
    }
}

/// Outcome of a period search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best schedule found.
    pub schedule: PeriodicSchedule,
    /// Its steady-state objectives.
    pub report: SteadyStateReport,
    /// How many candidate periods were evaluated.
    pub candidates_tried: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::{Bw, Bytes};

    fn platform() -> Platform {
        Platform::new("test", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    #[test]
    fn single_app_search_reaches_unit_dilation() {
        let p = platform();
        let apps = [PeriodicAppSpec::new(
            0,
            100,
            Time::secs(8.0),
            Bytes::gib(20.0),
        )];
        let result = PeriodSearch::new(PeriodicObjective::Dilation)
            .run(&p, &apps, InsertionHeuristic::Congestion)
            .unwrap();
        // T₀ = 10 s fits exactly one instance back-to-back: dilation 1.
        assert!(
            (result.report.dilation - 1.0).abs() < 1e-6,
            "dilation {}",
            result.report.dilation
        );
        result.schedule.validate(&p).unwrap();
    }

    #[test]
    fn search_tries_multiple_candidates() {
        let p = platform();
        let apps = [
            PeriodicAppSpec::new(0, 100, Time::secs(8.0), Bytes::gib(20.0)),
            PeriodicAppSpec::new(1, 200, Time::secs(15.0), Bytes::gib(40.0)),
        ];
        let result = PeriodSearch::new(PeriodicObjective::SysEfficiency)
            .with_epsilon(0.25)
            .with_max_factor(4.0)
            .run(&p, &apps, InsertionHeuristic::Throughput)
            .unwrap();
        assert!(result.candidates_tried >= 5);
        result.schedule.validate(&p).unwrap();
        assert!(result.report.sys_efficiency > 0.0);
    }

    #[test]
    fn two_identical_apps_share_fairly_under_dilation_search() {
        let p = platform();
        let apps = [
            PeriodicAppSpec::new(0, 100, Time::secs(8.0), Bytes::gib(20.0)),
            PeriodicAppSpec::new(1, 100, Time::secs(8.0), Bytes::gib(20.0)),
        ];
        let result = PeriodSearch::new(PeriodicObjective::Dilation)
            .run(&p, &apps, InsertionHeuristic::Congestion)
            .unwrap();
        result.schedule.validate(&p).unwrap();
        // Both apps can interleave I/O perfectly within T = 2·span? No —
        // with B = 10 only one can transfer at full rate at a time, but
        // computes overlap, so near-1 dilation is reachable; accept ≤ 1.5.
        assert!(
            result.report.dilation < 1.5,
            "dilation {}",
            result.report.dilation
        );
        let n0 = result.schedule.n_per(iosched_model::AppId(0));
        let n1 = result.schedule.n_per(iosched_model::AppId(1));
        assert!((n0 as i64 - n1 as i64).abs() <= 1);
    }

    #[test]
    fn candidate_count_matches_the_search_progression() {
        let p = platform();
        let apps = [
            PeriodicAppSpec::new(0, 100, Time::secs(8.0), Bytes::gib(20.0)),
            PeriodicAppSpec::new(1, 200, Time::secs(15.0), Bytes::gib(40.0)),
        ];
        for (eps, factor) in [(0.25, 4.0), (0.05, 10.0), (0.5, 1.5)] {
            let search = PeriodSearch::new(PeriodicObjective::Dilation)
                .with_epsilon(eps)
                .with_max_factor(factor);
            let result = search
                .run(&p, &apps, InsertionHeuristic::Congestion)
                .unwrap();
            assert_eq!(
                search.candidate_count(&p, &apps),
                result.candidates_tried,
                "eps {eps} factor {factor}"
            );
        }
        assert_eq!(
            PeriodSearch::new(PeriodicObjective::Dilation).candidate_count(&p, &[]),
            0
        );
    }

    #[test]
    fn empty_app_set_returns_none() {
        let p = platform();
        let r = PeriodSearch::new(PeriodicObjective::Dilation).run(
            &p,
            &[],
            InsertionHeuristic::Congestion,
        );
        assert!(r.is_none());
    }

    #[test]
    fn objective_choice_selects_the_matching_optimum() {
        let p = platform();
        // A compute-heavy big app and an I/O-heavy small app compete.
        let apps = [
            PeriodicAppSpec::new(0, 500, Time::secs(50.0), Bytes::gib(20.0)),
            PeriodicAppSpec::new(1, 20, Time::secs(2.0), Bytes::gib(30.0)),
        ];
        // With the *same* insertion heuristic, picking the best period for
        // each objective must dominate the other search on that objective.
        for h in [
            InsertionHeuristic::Throughput,
            InsertionHeuristic::Congestion,
        ] {
            let eff = PeriodSearch::new(PeriodicObjective::SysEfficiency)
                .run(&p, &apps, h)
                .unwrap();
            let dil = PeriodSearch::new(PeriodicObjective::Dilation)
                .run(&p, &apps, h)
                .unwrap();
            assert!(eff.report.sys_efficiency >= dil.report.sys_efficiency - 1e-9);
            assert!(dil.report.dilation <= eff.report.dilation + 1e-9);
        }
    }
}
