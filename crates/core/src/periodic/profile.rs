//! Piecewise-constant *available bandwidth* over one period `[0, T)`.
//!
//! The greedy insertion of §3.2.3 needs two queries: "how much PFS
//! bandwidth is still free at time t" and "what is the first instant ≥ t
//! where a transfer of duration `d` at constant bandwidth `γ·β` fits
//! contiguously". Both are answered by this segment list.

use iosched_model::{Bw, ModelError, Time};

/// Available-bandwidth profile over `[0, period)`.
///
/// Invariants: `times` is strictly increasing, starts at 0, all entries
/// `< period`; `avail[i]` holds on `[times[i], times[i+1])` (last segment
/// extends to `period`).
#[derive(Debug, Clone)]
pub struct BandwidthProfile {
    period: Time,
    times: Vec<Time>,
    avail: Vec<Bw>,
}

impl BandwidthProfile {
    /// A flat profile: the full capacity `capacity` available on the whole
    /// period.
    ///
    /// # Panics
    /// Panics if `period ≤ 0` or `capacity < 0`.
    #[must_use]
    pub fn new(period: Time, capacity: Bw) -> Self {
        assert!(period.get() > 0.0, "period must be positive");
        assert!(capacity.get() >= 0.0, "capacity must be non-negative");
        Self {
            period,
            times: vec![Time::ZERO],
            avail: vec![capacity],
        }
    }

    /// The period `T`.
    #[must_use]
    pub fn period(&self) -> Time {
        self.period
    }

    /// Number of internal segments (for diagnostics/tests).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.times.len()
    }

    /// Index of the segment containing `t` (`0 ≤ t < period`).
    fn segment_index(&self, t: Time) -> usize {
        debug_assert!(t.approx_ge(Time::ZERO) && t.approx_lt(self.period));
        // Binary search for the last boundary ≤ t.
        match self
            .times
            .binary_search_by(|probe| probe.get().total_cmp(&t.get()))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// End of segment `i`.
    fn segment_end(&self, i: usize) -> Time {
        if i + 1 < self.times.len() {
            self.times[i + 1]
        } else {
            self.period
        }
    }

    /// Available bandwidth at time `t ∈ [0, period)`.
    #[must_use]
    pub fn available_at(&self, t: Time) -> Bw {
        self.avail[self.segment_index(t)]
    }

    /// Minimum available bandwidth over `[start, end)`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ start < end ≤ period`.
    #[must_use]
    pub fn min_available(&self, start: Time, end: Time) -> Bw {
        assert!(start.approx_ge(Time::ZERO) && end.approx_le(self.period) && start.approx_lt(end));
        let mut i = self.segment_index(start);
        let mut min = self.avail[i];
        while self.segment_end(i).approx_lt(end) {
            i += 1;
            min = min.min(self.avail[i]);
        }
        min
    }

    /// Ensure a boundary exists exactly at `t`, splitting a segment if
    /// needed. No-op at 0, at the period end, or on an existing boundary.
    fn split_at(&mut self, t: Time) {
        if t.approx_le(Time::ZERO) || t.approx_ge(self.period) {
            return;
        }
        let i = self.segment_index(t);
        if self.times[i].approx_eq(t) {
            return;
        }
        self.times.insert(i + 1, t);
        let a = self.avail[i];
        self.avail.insert(i + 1, a);
    }

    /// Reserve `bw` over `[start, end)`, reducing availability.
    ///
    /// Fails with [`ModelError::InvalidSchedule`] if the interval is out of
    /// range or the reservation would drive any segment negative.
    pub fn reserve(&mut self, start: Time, end: Time, bw: Bw) -> Result<(), ModelError> {
        if !(start.approx_ge(Time::ZERO) && end.approx_le(self.period) && start.approx_lt(end)) {
            return Err(ModelError::InvalidSchedule(format!(
                "reservation [{start}, {end}) outside period [0, {})",
                self.period
            )));
        }
        if bw.get() < 0.0 || !bw.is_finite() {
            return Err(ModelError::InvalidSchedule(format!(
                "reservation bandwidth {bw} invalid"
            )));
        }
        if self.min_available(start, end).approx_lt(bw) {
            return Err(ModelError::InvalidSchedule(format!(
                "insufficient bandwidth on [{start}, {end}): need {bw}, have {}",
                self.min_available(start, end)
            )));
        }
        self.split_at(start);
        self.split_at(end);
        let mut i = self.segment_index(start);
        loop {
            self.avail[i] = (self.avail[i] - bw).max(Bw::ZERO);
            if self.segment_end(i).approx_ge(end) {
                break;
            }
            i += 1;
        }
        Ok(())
    }

    /// First instant `s ≥ earliest` such that `[s, s+dur)` fits within the
    /// period with at least `bw` available throughout. Returns `None` when
    /// no such window exists.
    ///
    /// A zero-duration request fits at `earliest` itself (if in range).
    #[must_use]
    pub fn first_fit(&self, earliest: Time, dur: Time, bw: Bw) -> Option<Time> {
        let earliest = earliest.max(Time::ZERO);
        if dur.is_zero() {
            return if earliest.approx_le(self.period) {
                Some(earliest.min(self.period))
            } else {
                None
            };
        }
        if earliest.approx_ge(self.period) {
            return None;
        }
        let mut run_start: Option<Time> = None;
        let start_idx = self.segment_index(earliest);
        for i in start_idx..self.times.len() {
            let seg_end = self.segment_end(i);
            if self.avail[i].approx_ge(bw) {
                let rs = *run_start.get_or_insert(self.times[i]);
                let candidate = rs.max(earliest);
                if (candidate + dur).approx_le(seg_end) {
                    return Some(candidate);
                }
            } else {
                run_start = None;
            }
        }
        None
    }

    /// Iterate `(start, end, available)` segments — used by tests and
    /// pretty-printers.
    pub fn segments(&self) -> impl Iterator<Item = (Time, Time, Bw)> + '_ {
        (0..self.times.len()).map(move |i| (self.times[i], self.segment_end(i), self.avail[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> BandwidthProfile {
        BandwidthProfile::new(Time::secs(100.0), Bw::gib_per_sec(10.0))
    }

    #[test]
    fn fresh_profile_is_flat() {
        let p = profile();
        assert_eq!(p.segment_count(), 1);
        assert!(p
            .available_at(Time::secs(50.0))
            .approx_eq(Bw::gib_per_sec(10.0)));
        assert!(p
            .min_available(Time::ZERO, Time::secs(100.0))
            .approx_eq(Bw::gib_per_sec(10.0)));
    }

    #[test]
    fn reserve_splits_and_subtracts() {
        let mut p = profile();
        p.reserve(Time::secs(10.0), Time::secs(20.0), Bw::gib_per_sec(4.0))
            .unwrap();
        assert_eq!(p.segment_count(), 3);
        assert!(p
            .available_at(Time::secs(5.0))
            .approx_eq(Bw::gib_per_sec(10.0)));
        assert!(p
            .available_at(Time::secs(15.0))
            .approx_eq(Bw::gib_per_sec(6.0)));
        assert!(p
            .available_at(Time::secs(25.0))
            .approx_eq(Bw::gib_per_sec(10.0)));
    }

    #[test]
    fn overlapping_reservations_stack() {
        let mut p = profile();
        p.reserve(Time::secs(0.0), Time::secs(50.0), Bw::gib_per_sec(4.0))
            .unwrap();
        p.reserve(Time::secs(25.0), Time::secs(75.0), Bw::gib_per_sec(4.0))
            .unwrap();
        assert!(p
            .available_at(Time::secs(10.0))
            .approx_eq(Bw::gib_per_sec(6.0)));
        assert!(p
            .available_at(Time::secs(30.0))
            .approx_eq(Bw::gib_per_sec(2.0)));
        assert!(p
            .available_at(Time::secs(60.0))
            .approx_eq(Bw::gib_per_sec(6.0)));
        // A third overlapping reservation that would go negative must fail.
        let err = p.reserve(Time::secs(25.0), Time::secs(30.0), Bw::gib_per_sec(3.0));
        assert!(err.is_err());
    }

    #[test]
    fn reserve_rejects_out_of_range() {
        let mut p = profile();
        assert!(p
            .reserve(Time::secs(-1.0), Time::secs(5.0), Bw::gib_per_sec(1.0))
            .is_err());
        assert!(p
            .reserve(Time::secs(90.0), Time::secs(101.0), Bw::gib_per_sec(1.0))
            .is_err());
        assert!(p
            .reserve(Time::secs(5.0), Time::secs(5.0), Bw::gib_per_sec(1.0))
            .is_err());
    }

    #[test]
    fn first_fit_on_flat_profile_is_earliest() {
        let p = profile();
        let s = p
            .first_fit(Time::secs(12.0), Time::secs(30.0), Bw::gib_per_sec(10.0))
            .unwrap();
        assert!(s.approx_eq(Time::secs(12.0)));
    }

    #[test]
    fn first_fit_skips_saturated_window() {
        let mut p = profile();
        p.reserve(Time::secs(0.0), Time::secs(40.0), Bw::gib_per_sec(8.0))
            .unwrap();
        // Need 5 GiB/s for 10 s: the first 40 s only offer 2.
        let s = p
            .first_fit(Time::ZERO, Time::secs(10.0), Bw::gib_per_sec(5.0))
            .unwrap();
        assert!(s.approx_eq(Time::secs(40.0)));
        // But 2 GiB/s fits immediately.
        let s = p
            .first_fit(Time::ZERO, Time::secs(10.0), Bw::gib_per_sec(2.0))
            .unwrap();
        assert!(s.approx_eq(Time::ZERO));
    }

    #[test]
    fn first_fit_spans_segment_boundaries() {
        let mut p = profile();
        p.reserve(Time::secs(10.0), Time::secs(20.0), Bw::gib_per_sec(3.0))
            .unwrap();
        p.reserve(Time::secs(20.0), Time::secs(30.0), Bw::gib_per_sec(5.0))
            .unwrap();
        // Availability: [0,10)=10, [10,20)=7, [20,30)=5, [30,100)=10.
        // A 20-second window at 6 GiB/s fits at 0: min over [0,20) = 7.
        let s = p
            .first_fit(Time::ZERO, Time::secs(20.0), Bw::gib_per_sec(6.0))
            .unwrap();
        assert!(s.approx_eq(Time::ZERO));
        // 8 GiB/s for 20 s cannot fit before 30 ([10,30) is below 8).
        let s = p
            .first_fit(Time::ZERO, Time::secs(20.0), Bw::gib_per_sec(8.0))
            .unwrap();
        assert!(s.approx_eq(Time::secs(30.0)));
    }

    #[test]
    fn first_fit_none_when_nothing_fits() {
        let p = profile();
        assert!(p
            .first_fit(Time::ZERO, Time::secs(200.0), Bw::gib_per_sec(1.0))
            .is_none());
        assert!(p
            .first_fit(Time::secs(95.0), Time::secs(10.0), Bw::gib_per_sec(1.0))
            .is_none());
        assert!(p
            .first_fit(Time::secs(150.0), Time::secs(1.0), Bw::gib_per_sec(1.0))
            .is_none());
    }

    #[test]
    fn first_fit_zero_duration() {
        let p = profile();
        let s = p.first_fit(Time::secs(7.0), Time::ZERO, Bw::gib_per_sec(99.0));
        assert!(s.unwrap().approx_eq(Time::secs(7.0)));
    }

    #[test]
    fn min_available_across_boundaries() {
        let mut p = profile();
        p.reserve(Time::secs(30.0), Time::secs(60.0), Bw::gib_per_sec(9.0))
            .unwrap();
        let m = p.min_available(Time::secs(20.0), Time::secs(70.0));
        assert!(m.approx_eq(Bw::gib_per_sec(1.0)));
        let m = p.min_available(Time::secs(0.0), Time::secs(30.0));
        assert!(m.approx_eq(Bw::gib_per_sec(10.0)));
    }

    #[test]
    fn segments_iterator_covers_period() {
        let mut p = profile();
        p.reserve(Time::secs(10.0), Time::secs(20.0), Bw::gib_per_sec(1.0))
            .unwrap();
        let segs: Vec<_> = p.segments().collect();
        assert!(segs.first().unwrap().0.approx_eq(Time::ZERO));
        assert!(segs.last().unwrap().1.approx_eq(Time::secs(100.0)));
        for w in segs.windows(2) {
            assert!(w[0].1.approx_eq(w[1].0), "segments must tile the period");
        }
    }
}
