//! Replaying a [`PeriodicSchedule`] as an [`OnlinePolicy`] (§3.2 meets
//! §3.1).
//!
//! The timetable repeats forever: at simulation time `t`, application `k`
//! receives its planned bandwidth iff `t mod T` falls inside one of its
//! reservation windows (and it actually has an outstanding transfer). The
//! policy wakes the driving engine at every window boundary via
//! [`OnlinePolicy::next_wakeup`], so grants change exactly when the
//! timetable says they should. This is what makes offline periodic
//! schedules first-class citizens of the online-policy roster: the
//! scenario-aware registry ([`crate::registry::PolicyFactory`]) builds the
//! schedule from the materialized workload and hands the simulator a
//! `TimetablePolicy` like any other policy.
//!
//! (The analytic cross-check — unrolling the schedule over `n` regular
//! periods and comparing against the fluid engine — lives in
//! `iosched_sim::periodic_exec`, next to the engine it validates.)

use super::schedule::PeriodicSchedule;
use crate::policy::{AllocScratch, Allocation, OnlinePolicy, SchedContext};
use iosched_model::{AppId, Bw, Time, EPS};

/// Replay a [`PeriodicSchedule`] inside a fluid simulator.
#[derive(Debug, Clone)]
pub struct TimetablePolicy {
    schedule: PeriodicSchedule,
    /// Sorted window boundaries within `[0, T)`.
    boundaries: Vec<Time>,
    /// `(app, plan position)` pairs sorted by `AppId`: the replay looks
    /// a pending application's plan up at every event, and a linear
    /// `find` over the plans turns each allocation into `O(pending ×
    /// plans)` — the dominant cost of the timetable row in the
    /// congested-moment bench.
    plan_index: Vec<(AppId, u32)>,
    /// Report name (`"timetable"` unless the registry overrode it with
    /// the factory's serde name).
    name: String,
}

impl TimetablePolicy {
    /// Wrap a schedule for execution.
    ///
    /// # Panics
    /// Panics on a schedule with a non-positive period.
    #[must_use]
    pub fn new(schedule: PeriodicSchedule) -> Self {
        assert!(schedule.period.get() > 0.0, "period must be positive");
        let mut boundaries: Vec<Time> = schedule
            .plans
            .iter()
            .flat_map(|p| p.instances.iter().flat_map(|i| [i.io_start, i.io_end]))
            .collect();
        boundaries.sort_by(|a, b| a.get().total_cmp(&b.get()));
        boundaries.dedup_by(|a, b| a.approx_eq(*b));
        let mut plan_index: Vec<(AppId, u32)> = schedule
            .plans
            .iter()
            .enumerate()
            .map(|(k, p)| (p.app, u32::try_from(k).expect("plan count fits u32")))
            .collect();
        plan_index.sort_unstable_by_key(|&(id, _)| id);
        // `planned_bw` keeps the first matching plan (the `find`
        // contract), so duplicate plans for one app keep the lowest
        // position after the sort-by-(id, k).
        plan_index.dedup_by_key(|&mut (id, _)| id);
        Self {
            schedule,
            boundaries,
            plan_index,
            name: "timetable".into(),
        }
    }

    /// Override the report name (the registry labels replays with the
    /// factory's serde name, e.g. `periodic:cong`).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The schedule being replayed.
    #[must_use]
    pub fn schedule(&self) -> &PeriodicSchedule {
        &self.schedule
    }

    /// Offset of `t` within the repeating period.
    fn offset(&self, t: Time) -> Time {
        let period = self.schedule.period.as_secs();
        Time::secs(t.as_secs().rem_euclid(period))
    }

    /// Planned bandwidth of application `id` at period offset `offset`.
    fn planned_bw(&self, id: AppId, offset: Time) -> Bw {
        self.plan_index
            .binary_search_by_key(&id, |&(pid, _)| pid)
            .ok()
            .map_or(Bw::ZERO, |k| {
                let plan = &self.schedule.plans[self.plan_index[k].1 as usize];
                plan.instances
                    .iter()
                    .find(|i| offset.approx_ge(i.io_start) && offset.approx_lt(i.io_end))
                    .map_or(Bw::ZERO, |i| i.io_bw)
            })
    }
}

impl OnlinePolicy for TimetablePolicy {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
        // Ordering is irrelevant — allocate is overridden — but must be a
        // permutation for trait contract purposes.
        (0..ctx.pending.len()).collect()
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> Allocation {
        let offset = self.offset(ctx.now);
        let mut grants: Vec<(AppId, Bw)> = ctx
            .pending
            .iter()
            .filter_map(|app| {
                let bw = self.planned_bw(app.id, offset).min(app.max_bw);
                (bw.get() > 0.0).then_some((app.id, bw))
            })
            .collect();
        // The plan was built against the full PFS bandwidth; when the
        // usable capacity is smaller at replay time (an external
        // communication storm shrinking the shared pipe), the open-loop
        // timetable is squeezed proportionally — the schedule's *shape*
        // is preserved while the aggregate respects the §2.1 capacity
        // rule. With the capacity the schedule was built for this is a
        // no-op (the plan never overcommits), so pre-storm replays are
        // bit-identical.
        let total: Bw = grants.iter().map(|(_, bw)| *bw).sum();
        if total.approx_gt(ctx.total_bw) && total.get() > 0.0 {
            let scale = ctx.total_bw.get() / total.get();
            for (_, bw) in &mut grants {
                *bw = *bw * scale;
            }
        }
        Allocation { grants }
    }

    fn allocate_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        // Same pass as `allocate`, writing into the reused grant buffer.
        let offset = self.offset(ctx.now);
        let grants = &mut scratch.alloc.grants;
        grants.clear();
        grants.extend(ctx.pending.iter().filter_map(|app| {
            let bw = self.planned_bw(app.id, offset).min(app.max_bw);
            (bw.get() > 0.0).then_some((app.id, bw))
        }));
        let total: Bw = grants.iter().map(|(_, bw)| *bw).sum();
        if total.approx_gt(ctx.total_bw) && total.get() > 0.0 {
            let scale = ctx.total_bw.get() / total.get();
            for (_, bw) in grants.iter_mut() {
                *bw = *bw * scale;
            }
        }
    }

    /// Next boundary strictly after `now` — *as the driving engine sees
    /// strictness*. The engine compares wakeups with the mixed
    /// absolute/relative [`EPS`] tolerance, whose scale grows with `now`;
    /// a boundary that is ahead of `now mod T` in period-offset space can
    /// land within one ulp of (or exactly on) `now` once mapped back to
    /// absolute time at a large clock. Returning such a time would either
    /// be discarded (stalling the replay) or advance the clock by less
    /// than the comparison tolerance event after event — a Zeno spin
    /// burning the event budget without progress. So every candidate is
    /// re-checked against `now` in absolute time and skipped if the
    /// mapping collapsed it, falling through to later boundaries and then
    /// whole periods.
    fn next_wakeup(&self, now: Time) -> Option<Time> {
        let period = self.schedule.period;
        let offset = self.offset(now);
        let base = now - offset;
        // Boundaries are sorted and `b ↦ b - tol(b)` is strictly
        // increasing, so `approx_gt(offset)` flips from false to true at
        // most once along the vector — the first candidate is found by
        // binary search instead of scanning the (possibly thousands of)
        // already-passed boundaries of the period.
        let first = self.boundaries.partition_point(|&b| !b.approx_gt(offset));
        for &b in &self.boundaries[first..] {
            let t = base + b;
            if t.approx_gt(now) {
                return Some(t);
            }
            // Rounding collapsed this boundary onto the clock: fall
            // through to a later one.
        }
        // Wrap into following periods, trying *every* boundary of each
        // (a collapsed first boundary must fall through to the next
        // boundary of the same period, not to the next whole period —
        // otherwise a grant change fires up to a period late).
        let mut shifted = base;
        for _ in 0..64 {
            shifted += period;
            if self.boundaries.is_empty() {
                if shifted.approx_gt(now) {
                    return Some(shifted);
                }
                continue;
            }
            for &b in &self.boundaries {
                let t = shifted + b;
                if t.approx_gt(now) {
                    return Some(t);
                }
            }
        }
        // Degenerate: the clock is so large that whole periods vanish
        // below the comparison tolerance. Step by the tolerance itself so
        // the engine always observes strict progress.
        Some(Time::new(now.get() + 2.0 * EPS * now.get().abs().max(1.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::periodic::{build_schedule, InsertionHeuristic, PeriodicAppSpec};
    use iosched_model::{Bytes, Platform};

    fn platform() -> Platform {
        Platform::new("t", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    fn schedule() -> PeriodicSchedule {
        let apps = [
            PeriodicAppSpec::new(0, 100, Time::secs(8.0), Bytes::gib(20.0)),
            PeriodicAppSpec::new(1, 100, Time::secs(8.0), Bytes::gib(20.0)),
        ];
        build_schedule(
            &platform(),
            &apps,
            Time::secs(24.0),
            InsertionHeuristic::Congestion,
        )
    }

    #[test]
    fn grants_follow_the_plan() {
        let s = schedule();
        let mut policy = TimetablePolicy::new(s.clone());
        // Probe the middle of the first app's first I/O window.
        let plan = &s.plans[0];
        let inst = &plan.instances[0];
        let mid = (inst.io_start + inst.io_end) / 2.0;
        let pending = [crate::policy::test_support::app(plan.app.0, 100.0)];
        let ctx = SchedContext {
            now: mid,
            total_bw: Bw::gib_per_sec(10.0),
            pending: &pending,
            signal: None,
        };
        let alloc = policy.allocate(&ctx);
        assert!(alloc.granted(plan.app).approx_eq(inst.io_bw));
        // And mid-compute (before the window) it grants nothing.
        let ctx2 = SchedContext {
            now: inst.io_start - Time::secs(0.5),
            ..ctx
        };
        assert!(policy.allocate(&ctx2).granted(plan.app).is_zero());
    }

    #[test]
    fn shrunk_capacity_squeezes_the_plan_proportionally() {
        let s = schedule();
        let mut policy = TimetablePolicy::new(s.clone());
        let plan = &s.plans[0];
        let inst = &plan.instances[0];
        let mid = (inst.io_start + inst.io_end) / 2.0;
        let mut pending = [crate::policy::test_support::app(plan.app.0, 100.0)];
        pending[0].max_bw = Bw::gib_per_sec(100.0);
        // Full capacity: the planned bandwidth, untouched.
        let ctx = SchedContext {
            now: mid,
            total_bw: Bw::gib_per_sec(10.0),
            pending: &pending,
            signal: None,
        };
        assert!(policy
            .allocate(&ctx)
            .granted(plan.app)
            .approx_eq(inst.io_bw));
        // A storm halves the pipe below the planned rate: the grant is
        // squeezed onto the capacity and stays valid.
        let squeezed_cap = inst.io_bw / 2.0;
        let ctx = SchedContext {
            total_bw: squeezed_cap,
            ..ctx
        };
        let alloc = policy.allocate(&ctx);
        assert!(alloc.granted(plan.app).approx_eq(squeezed_cap));
        alloc.validate(&ctx).unwrap();
    }

    #[test]
    fn wakeups_hit_every_boundary() {
        let s = schedule();
        let policy = TimetablePolicy::new(s.clone());
        let first = policy.next_wakeup(Time::ZERO).unwrap();
        assert!(first.approx_gt(Time::ZERO));
        // Wakeups advance strictly and wrap to the next period.
        let mut t = Time::ZERO;
        let mut steps = 0;
        while t.approx_lt(s.period * 2.0) {
            let next = policy.next_wakeup(t).unwrap();
            assert!(next.approx_gt(t), "wakeup {next} not after {t}");
            t = next;
            steps += 1;
            assert!(steps < 1_000, "wakeups must make progress");
        }
        assert!(steps >= 4, "two periods should contain several boundaries");
    }

    /// Regression (Zeno spin): when a window boundary lands within one
    /// ulp of the current clock — unavoidable once `now` is many periods
    /// in — `next_wakeup` must not return a time the engine's
    /// `approx_gt(now)` check would discard, nor crawl forward in
    /// sub-tolerance steps. Every returned wakeup is strictly ahead under
    /// the same mixed tolerance the engine applies, and a bounded number
    /// of wakeups crosses any period.
    #[test]
    fn wakeups_advance_even_when_a_boundary_is_one_ulp_away() {
        let s = schedule();
        let policy = TimetablePolicy::new(s.clone());
        let period = s.period.as_secs();
        // A clock ~4×10⁹ periods in: ulp(now) is far larger than any
        // boundary gap mapped through `rem_euclid`, so naive `base + b`
        // arithmetic collapses boundaries onto (or before) the clock.
        let huge = 4.0e9_f64 * period;
        for &b in policy.boundaries.iter().chain([Time::ZERO].iter()) {
            // Park the clock exactly on the boundary's image, one ulp
            // below, and one ulp above.
            let on = huge + b.as_secs();
            for now in [
                on,
                f64::from_bits(on.to_bits() - 1),
                f64::from_bits(on.to_bits() + 1),
            ] {
                let now = Time::secs(now);
                let next = policy.next_wakeup(now).unwrap();
                assert!(
                    next.approx_gt(now),
                    "wakeup {next} not strictly after {now} (boundary {b})"
                );
            }
        }
        // Progress bound: from any huge clock, a handful of wakeups must
        // cross two full periods (no sub-tolerance crawling).
        let mut t = Time::secs(huge);
        let goal = Time::secs(huge + 2.0 * period);
        let mut steps = 0;
        while t.approx_lt(goal) {
            t = policy.next_wakeup(t).unwrap();
            steps += 1;
            assert!(steps < 1_000, "Zeno spin: {steps} wakeups without progress");
        }
    }

    /// Companion to the ulp regression: when the comparison tolerance at
    /// a large clock swallows the gap to the next period's *first*
    /// boundary but not to its second, the wrap must fall through to the
    /// second boundary — not jump a whole extra period and fire the
    /// grant change late.
    #[test]
    fn collapsed_next_period_boundary_falls_through_within_one_period() {
        let s = schedule();
        let policy = TimetablePolicy::new(s.clone());
        let period = s.period.as_secs(); // 24 s, boundaries at 8, 10, …
                                         // now ≈ 9×10⁹ s: tolerance ≈ EPS·now ≈ 9 s. Parked at offset
                                         // 23.9 s, the next period's boundary at 8 is only 8.1 s ahead
                                         // (collapsed under the tolerance) while the one at 10 is 10.1 s
                                         // ahead (visible).
        let now = Time::secs(375_000_000.0 * period + 23.9);
        let next = policy.next_wakeup(now).unwrap();
        assert!(next.approx_gt(now));
        assert!(
            next.get() - now.get() <= period,
            "wakeup jumped {} s — more than one period ({period} s): the \
             wrap skipped the next period's later boundaries",
            next.get() - now.get()
        );
    }

    #[test]
    fn with_name_relabels_the_replay() {
        let policy = TimetablePolicy::new(schedule());
        assert_eq!(policy.name(), "timetable");
        let named = TimetablePolicy::new(schedule()).with_name("periodic:cong");
        assert_eq!(named.name(), "periodic:cong");
    }
}
