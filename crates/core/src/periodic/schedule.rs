//! The periodic schedule representation of §3.2.1 and its validator.
//!
//! One *regular period* `[0, T)` fully describes steady state. Within the
//! period each application `App(k)` runs `n_per(k)` instances; instance `i`
//! computes on `[initW_i, endW_i)` (`endW_i = initW_i + w`) and transfers its
//! `vol_io` during `[endW_i, initW_{i+1})` — in this implementation at a
//! single constant bandwidth on a contiguous sub-interval (the shape the
//! greedy insertion of §3.2.3 produces).
//!
//! Simplification vs the paper's fully general definition: instances do not
//! wrap around the period boundary (the paper allows the last compute chunk
//! to overlap into the next period). The `(1+ε)` period search compensates
//! by trying many periods; the wrapped form is only needed for the
//! NP-hardness construction, which [`crate::three_partition`] checks with
//! its own purpose-built verifier.

use iosched_model::{AppId, Bw, Bytes, ModelError, Platform, Time};
use serde::{Deserialize, Serialize};

/// One scheduled instance within the period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedInstance {
    /// Instance index within the period (`0 ≤ index < n_per`).
    pub index: usize,
    /// `initW_i`: compute start.
    pub compute_start: Time,
    /// `endW_i = initW_i + w`: compute end.
    pub compute_end: Time,
    /// `initIO_i`: first instant with non-zero bandwidth.
    pub io_start: Time,
    /// I/O completion instant.
    pub io_end: Time,
    /// Constant application-aggregate bandwidth `β·γ` during the transfer.
    pub io_bw: Bw,
}

/// All instances of one application within the period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppPlan {
    /// Which application.
    pub app: AppId,
    /// `β(k)`.
    pub procs: u64,
    /// `w(k)` (periodic applications only).
    pub work: Time,
    /// `vol_io(k)`.
    pub vol: Bytes,
    /// Scheduled instances, ordered by `compute_start`.
    pub instances: Vec<PlannedInstance>,
}

impl AppPlan {
    /// `n_per(k)`: instances scheduled per period.
    #[must_use]
    pub fn n_per(&self) -> usize {
        self.instances.len()
    }
}

/// A complete periodic schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodicSchedule {
    /// The period `T`.
    pub period: Time,
    /// One plan per application (possibly with zero instances).
    pub plans: Vec<AppPlan>,
}

/// Steady-state outcome of one application under a periodic schedule.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PeriodicAppOutcome {
    /// Which application.
    pub app: AppId,
    /// `β(k)`.
    pub procs: u64,
    /// `n_per(k)`.
    pub n_per: usize,
    /// `ρ(k) = w/(w + time_io)`.
    pub rho: f64,
    /// `ρ̃(k) = n_per·w/T` (equation (1)).
    pub rho_tilde: f64,
}

impl PeriodicAppOutcome {
    /// `ρ/ρ̃` (∞ when the application is never scheduled).
    #[must_use]
    pub fn dilation(&self) -> f64 {
        if self.rho_tilde <= 0.0 {
            f64::INFINITY
        } else {
            (self.rho / self.rho_tilde).max(1.0)
        }
    }
}

/// Steady-state objectives of a periodic schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SteadyStateReport {
    /// `(1/N) Σ β·ρ̃` with `N = Σ β`.
    pub sys_efficiency: f64,
    /// `(1/N) Σ β·ρ`.
    pub upper_limit: f64,
    /// `max_k ρ/ρ̃`.
    pub dilation: f64,
    /// Per-application detail.
    pub per_app: Vec<PeriodicAppOutcome>,
}

impl PeriodicSchedule {
    /// `n_per` of one application (0 if unknown id).
    #[must_use]
    pub fn n_per(&self, app: AppId) -> usize {
        self.plans
            .iter()
            .find(|p| p.app == app)
            .map_or(0, AppPlan::n_per)
    }

    /// Steady-state efficiency/dilation via equation (1):
    /// `ρ̃(k) = n_per(k)·w(k)/T`.
    ///
    /// # Panics
    /// Panics if the schedule has no plans.
    #[must_use]
    pub fn steady_state(&self, platform: &Platform) -> SteadyStateReport {
        assert!(!self.plans.is_empty(), "steady state of empty schedule");
        let per_app: Vec<PeriodicAppOutcome> = self
            .plans
            .iter()
            .map(|p| {
                let tio = platform.dedicated_io_time(p.procs, p.vol);
                let span = p.work + tio;
                let rho = if span.get() <= 0.0 {
                    1.0
                } else {
                    p.work / span
                };
                let rho_tilde = p.n_per() as f64 * (p.work / self.period);
                PeriodicAppOutcome {
                    app: p.app,
                    procs: p.procs,
                    n_per: p.n_per(),
                    rho,
                    rho_tilde: rho_tilde.min(rho), // ρ̃ ≤ ρ by construction; clamp f64 noise
                }
            })
            .collect();
        let n: f64 = per_app.iter().map(|o| o.procs as f64).sum();
        SteadyStateReport {
            sys_efficiency: per_app
                .iter()
                .map(|o| o.procs as f64 * o.rho_tilde)
                .sum::<f64>()
                / n,
            upper_limit: per_app.iter().map(|o| o.procs as f64 * o.rho).sum::<f64>() / n,
            dilation: per_app
                .iter()
                .map(PeriodicAppOutcome::dilation)
                .fold(1.0_f64, f64::max),
            per_app,
        }
    }

    /// Check every §3.2.1 constraint:
    ///
    /// 1. per-instance geometry: `compute_end = compute_start + w`,
    ///    `compute_end ≤ io_start`, `io_start < io_end ≤ T`;
    /// 2. volume: `io_bw · (io_end − io_start) = vol_io` (within EPS·B);
    /// 3. per-application bandwidth cap: `io_bw ≤ min(β·b, B)`;
    /// 4. chaining: instance `i+1` computes only after instance `i`'s I/O
    ///    completed; the wrap to the next period is implied by
    ///    `io_end ≤ T` and `compute_start ≥ 0`;
    /// 5. aggregate capacity: at every instant `Σ_k β(k)γ(k)(t) ≤ B`.
    pub fn validate(&self, platform: &Platform) -> Result<(), ModelError> {
        let t_end = self.period;
        let mut events: Vec<(Time, f64)> = Vec::new();
        for plan in &self.plans {
            let cap = platform.app_max_bw(plan.procs);
            let mut prev_io_end: Option<Time> = None;
            for (i, inst) in plan.instances.iter().enumerate() {
                let err = |msg: String| {
                    Err(ModelError::InvalidSchedule(format!(
                        "{} instance {i}: {msg}",
                        plan.app
                    )))
                };
                if inst.index != i {
                    return err(format!("index {} out of order", inst.index));
                }
                if !inst.compute_end.approx_eq(inst.compute_start + plan.work) {
                    return err(format!(
                        "compute [{}, {}) is not w = {}",
                        inst.compute_start, inst.compute_end, plan.work
                    ));
                }
                if inst.compute_start.approx_lt(Time::ZERO) || inst.io_end.approx_gt(t_end) {
                    return err("instance leaves the period".into());
                }
                if inst.io_start.approx_lt(inst.compute_end) {
                    return err("I/O starts before compute ends".into());
                }
                if plan.vol.get() > 0.0 {
                    if inst.io_end.approx_le(inst.io_start) {
                        return err("empty I/O window with non-zero volume".into());
                    }
                    if inst.io_bw.approx_gt(cap) {
                        return err(format!("bandwidth {} above cap {cap}", inst.io_bw));
                    }
                    let moved = inst.io_bw * (inst.io_end - inst.io_start);
                    if !moved.approx_eq(plan.vol)
                        && (moved - plan.vol).get().abs() > 1e-6 * plan.vol.get().max(1.0)
                    {
                        return err(format!("transfers {moved} instead of {}", plan.vol));
                    }
                    events.push((inst.io_start, inst.io_bw.get()));
                    events.push((inst.io_end, -inst.io_bw.get()));
                }
                if let Some(pe) = prev_io_end {
                    if inst.compute_start.approx_lt(pe) {
                        return err("compute overlaps previous instance's I/O".into());
                    }
                }
                prev_io_end = Some(inst.io_end);
            }
        }
        // Aggregate capacity sweep.
        events.sort_by(|a, b| a.0.get().total_cmp(&b.0.get()));
        let mut load = 0.0;
        let cap = platform.total_bw.get();
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            // Apply all simultaneous events (ends before starts don't
            // matter for a ≤ check as long as both apply at once).
            while i < events.len() && events[i].0.approx_eq(t) {
                load += events[i].1;
                i += 1;
            }
            if load > cap * (1.0 + 1e-9) + iosched_model::EPS {
                return Err(ModelError::InvalidSchedule(format!(
                    "aggregate bandwidth {load} exceeds B = {cap} at t = {t}"
                )));
            }
        }
        Ok(())
    }

    /// Total I/O volume moved per period (for reports).
    #[must_use]
    pub fn vol_per_period(&self) -> Bytes {
        self.plans
            .iter()
            .map(|p| Bytes::new(p.vol.get() * p.n_per() as f64))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::Bw;

    fn platform() -> Platform {
        Platform::new("test", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    /// One app, one instance: compute [0, 8), I/O [8, 10) at 10 GiB/s,
    /// vol = 20 GiB, T = 10 → dilation 1, ρ̃ = ρ = 0.8.
    fn perfect_schedule() -> PeriodicSchedule {
        PeriodicSchedule {
            period: Time::secs(10.0),
            plans: vec![AppPlan {
                app: AppId(0),
                procs: 100,
                work: Time::secs(8.0),
                vol: Bytes::gib(20.0),
                instances: vec![PlannedInstance {
                    index: 0,
                    compute_start: Time::ZERO,
                    compute_end: Time::secs(8.0),
                    io_start: Time::secs(8.0),
                    io_end: Time::secs(10.0),
                    io_bw: Bw::gib_per_sec(10.0),
                }],
            }],
        }
    }

    #[test]
    fn perfect_schedule_validates_with_unit_dilation() {
        let p = platform();
        let s = perfect_schedule();
        s.validate(&p).unwrap();
        let report = s.steady_state(&p);
        assert!((report.dilation - 1.0).abs() < 1e-9);
        assert!((report.sys_efficiency - 0.8).abs() < 1e-9);
        assert!((report.upper_limit - 0.8).abs() < 1e-9);
    }

    #[test]
    fn longer_period_dilates() {
        let p = platform();
        let mut s = perfect_schedule();
        s.period = Time::secs(20.0);
        s.validate(&p).unwrap();
        let report = s.steady_state(&p);
        // ρ̃ = 8/20 = 0.4, ρ = 0.8 → dilation 2.
        assert!((report.dilation - 2.0).abs() < 1e-9);
        assert!((report.sys_efficiency - 0.4).abs() < 1e-9);
    }

    #[test]
    fn unscheduled_app_has_infinite_dilation() {
        let p = platform();
        let mut s = perfect_schedule();
        s.plans.push(AppPlan {
            app: AppId(1),
            procs: 50,
            work: Time::secs(5.0),
            vol: Bytes::gib(1.0),
            instances: vec![],
        });
        s.validate(&p).unwrap();
        let report = s.steady_state(&p);
        assert!(report.dilation.is_infinite());
    }

    #[test]
    fn validation_rejects_wrong_volume() {
        let p = platform();
        let mut s = perfect_schedule();
        s.plans[0].instances[0].io_end = Time::secs(9.0); // moves only 10 GiB
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn validation_rejects_bandwidth_above_cap() {
        let p = platform();
        let mut s = perfect_schedule();
        // 100 procs × 0.1 = 10 GiB/s cap; claim 20.
        s.plans[0].instances[0].io_bw = Bw::gib_per_sec(20.0);
        s.plans[0].instances[0].io_end = Time::secs(9.0);
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn validation_rejects_io_before_compute_end() {
        let p = platform();
        let mut s = perfect_schedule();
        s.plans[0].instances[0].io_start = Time::secs(7.0);
        s.plans[0].instances[0].io_end = Time::secs(9.0);
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn validation_rejects_aggregate_overcommit() {
        let p = platform();
        let mut s = perfect_schedule();
        // Second app whose I/O overlaps the first at 10 GiB/s: 20 > B = 10.
        s.plans.push(AppPlan {
            app: AppId(1),
            procs: 100,
            work: Time::secs(8.0),
            vol: Bytes::gib(20.0),
            instances: vec![PlannedInstance {
                index: 0,
                compute_start: Time::ZERO,
                compute_end: Time::secs(8.0),
                io_start: Time::secs(8.0),
                io_end: Time::secs(10.0),
                io_bw: Bw::gib_per_sec(10.0),
            }],
        });
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn back_to_back_transfers_do_not_overcommit() {
        let p = platform();
        let mut s = perfect_schedule();
        s.period = Time::secs(20.0);
        // App 1 I/O on [10, 12) — starts exactly when app 0's ends.
        s.plans.push(AppPlan {
            app: AppId(1),
            procs: 100,
            work: Time::secs(8.0),
            vol: Bytes::gib(20.0),
            instances: vec![PlannedInstance {
                index: 0,
                compute_start: Time::secs(2.0),
                compute_end: Time::secs(10.0),
                io_start: Time::secs(10.0),
                io_end: Time::secs(12.0),
                io_bw: Bw::gib_per_sec(10.0),
            }],
        });
        s.validate(&p).unwrap();
    }

    #[test]
    fn validation_rejects_overlapping_instances_of_same_app() {
        let p = platform();
        let mut s = perfect_schedule();
        s.period = Time::secs(40.0);
        let first = s.plans[0].instances[0];
        s.plans[0].instances.push(PlannedInstance {
            index: 1,
            compute_start: first.io_end - Time::secs(1.0), // overlaps I/O
            compute_end: first.io_end + Time::secs(7.0),
            io_start: first.io_end + Time::secs(7.0),
            io_end: first.io_end + Time::secs(9.0),
            io_bw: Bw::gib_per_sec(10.0),
        });
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn vol_per_period_sums_instances() {
        let s = perfect_schedule();
        assert!(s.vol_per_period().approx_eq(Bytes::gib(20.0)));
    }
}
