//! Greedy instance insertion (§3.2.3).
//!
//! "Adding greedily an instance of application App(k) into the schedule
//! means that the heuristic tries to find the first instant in the period
//! where vol_io can be executed contiguously with a constant bandwidth
//! while matching the various constraints."
//!
//! The builder keeps, per application, a *cursor*: the earliest time its
//! next compute chunk may start (the end of the previous instance's I/O —
//! compute resources are dedicated, so computing immediately is always
//! optimal). Inserting an instance places compute `[cursor, cursor+w)` and
//! then asks the [`super::BandwidthProfile`] for the first contiguous
//! window after `cursor+w` that fits the transfer. Bandwidth selection
//! tries the application's maximum `min(β·b, B)` first and halves it up to
//! three times (a longer, thinner transfer often fits where a full-rate one
//! does not); this ladder is an implementation choice the paper leaves
//! open ("a constant bandwidth").

use super::profile::BandwidthProfile;
use super::schedule::{AppPlan, PeriodicSchedule, PlannedInstance};
use iosched_model::{AppId, AppSpec, Bw, Bytes, ModelError, Platform, Time};
use serde::{Deserialize, Serialize};

/// Safety cap on instances of one application per period; prevents
/// pathological periods from degenerating into unbounded insertion loops.
const MAX_INSTANCES_PER_APP: usize = 100_000;

/// How many times the bandwidth ladder halves the request.
const BW_LADDER_STEPS: u32 = 3;

/// A periodic application as the §3.2 scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodicAppSpec {
    /// Which application.
    pub id: AppId,
    /// `β(k)`.
    pub procs: u64,
    /// `w(k)`.
    pub work: Time,
    /// `vol_io(k)`.
    pub vol: Bytes,
}

impl PeriodicAppSpec {
    /// Construct directly.
    #[must_use]
    pub fn new(id: impl Into<AppId>, procs: u64, work: Time, vol: Bytes) -> Self {
        Self {
            id: id.into(),
            procs,
            work,
            vol,
        }
    }

    /// Extract the periodic profile of an [`AppSpec`].
    ///
    /// Fails when the application is not periodic — the periodic scheduler
    /// of §3.2 is only defined for periodic applications.
    pub fn from_app(app: &AppSpec) -> Result<Self, ModelError> {
        if !app.pattern().is_periodic() {
            return Err(ModelError::InvalidApp(format!(
                "{} is not periodic; the periodic scheduler requires w(k,i) = w(k)",
                app.id()
            )));
        }
        let inst = app.instance(0);
        Ok(Self {
            id: app.id(),
            procs: app.procs(),
            work: inst.work,
            vol: inst.vol,
        })
    }

    /// Dedicated-mode I/O time on `platform`.
    #[must_use]
    pub fn time_io(&self, platform: &Platform) -> Time {
        platform.dedicated_io_time(self.procs, self.vol)
    }

    /// Congestion-free instance span `w + time_io`.
    #[must_use]
    pub fn span(&self, platform: &Platform) -> Time {
        self.work + self.time_io(platform)
    }
}

/// Incremental periodic-schedule builder over one period.
#[derive(Debug, Clone)]
pub struct ScheduleBuilder {
    period: Time,
    total_bw: Bw,
    profile: BandwidthProfile,
    apps: Vec<PeriodicAppSpec>,
    max_bw: Vec<Bw>,
    cursors: Vec<Time>,
    plans: Vec<AppPlan>,
}

impl ScheduleBuilder {
    /// Start an empty schedule of period `period` for `apps` on `platform`.
    ///
    /// # Panics
    /// Panics if `period ≤ 0`.
    #[must_use]
    pub fn new(platform: &Platform, apps: &[PeriodicAppSpec], period: Time) -> Self {
        assert!(period.get() > 0.0, "period must be positive");
        let max_bw = apps.iter().map(|a| platform.app_max_bw(a.procs)).collect();
        let plans = apps
            .iter()
            .map(|a| AppPlan {
                app: a.id,
                procs: a.procs,
                work: a.work,
                vol: a.vol,
                instances: Vec::new(),
            })
            .collect();
        Self {
            period,
            total_bw: platform.total_bw,
            profile: BandwidthProfile::new(period, platform.total_bw),
            apps: apps.to_vec(),
            max_bw,
            cursors: vec![Time::ZERO; apps.len()],
            plans,
        }
    }

    /// The period being filled.
    #[must_use]
    pub fn period(&self) -> Time {
        self.period
    }

    /// Number of instances currently scheduled for app index `idx`.
    #[must_use]
    pub fn n_per(&self, idx: usize) -> usize {
        self.plans[idx].instances.len()
    }

    /// Try to insert the next instance of application index `idx`.
    /// Returns `true` on success; `false` when nothing fits in the
    /// remaining period (the application is *saturated* for this period).
    pub fn try_insert(&mut self, idx: usize) -> bool {
        let app = self.apps[idx];
        if self.plans[idx].instances.len() >= MAX_INSTANCES_PER_APP {
            return false;
        }
        let compute_start = self.cursors[idx];
        let compute_end = compute_start + app.work;
        if compute_end.approx_gt(self.period) {
            return false;
        }

        if app.vol.get() <= 0.0 {
            // Pure-compute instance: no reservation needed.
            let index = self.plans[idx].instances.len();
            self.plans[idx].instances.push(PlannedInstance {
                index,
                compute_start,
                compute_end,
                io_start: compute_end,
                io_end: compute_end,
                io_bw: Bw::ZERO,
            });
            self.cursors[idx] = compute_end;
            return true;
        }

        // Bandwidth ladder: full rate first, then thinner/longer windows.
        let full = self.max_bw[idx].min(self.total_bw);
        for step in 0..=BW_LADDER_STEPS {
            let bw = full / f64::from(1u32 << step);
            let dur = app.vol / bw;
            if !dur.is_finite() {
                continue;
            }
            let Some(start) = self.profile.first_fit(compute_end, dur, bw) else {
                continue;
            };
            let end = start + dur;
            if end.approx_gt(self.period) {
                continue;
            }
            self.profile
                .reserve(start, end, bw)
                .expect("first_fit returned an infeasible window");
            let index = self.plans[idx].instances.len();
            self.plans[idx].instances.push(PlannedInstance {
                index,
                compute_start,
                compute_end,
                io_start: start,
                io_end: end,
                io_bw: bw,
            });
            self.cursors[idx] = end;
            return true;
        }
        false
    }

    /// Finish and return the schedule.
    #[must_use]
    pub fn build(self) -> PeriodicSchedule {
        PeriodicSchedule {
            period: self.period,
            plans: self.plans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::new("test", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    /// w = 8 s, vol = 20 GiB on 100 procs → tio = 2 s at full 10 GiB/s.
    fn app(id: usize) -> PeriodicAppSpec {
        PeriodicAppSpec::new(id, 100, Time::secs(8.0), Bytes::gib(20.0))
    }

    #[test]
    fn single_app_packs_at_full_rate() {
        let p = platform();
        let mut b = ScheduleBuilder::new(&p, &[app(0)], Time::secs(30.0));
        assert!(b.try_insert(0)); // [0,8) compute, [8,10) I/O
        assert!(b.try_insert(0)); // [10,18) compute, [18,20) I/O
        assert!(b.try_insert(0)); // [20,28) compute, [28,30) I/O
        assert!(!b.try_insert(0)); // no room for a fourth
        let s = b.build();
        s.validate(&p).unwrap();
        assert_eq!(s.n_per(AppId(0)), 3);
        let inst = &s.plans[0].instances[1];
        assert!(inst.compute_start.approx_eq(Time::secs(10.0)));
        assert!(inst.io_bw.approx_eq(Bw::gib_per_sec(10.0)));
    }

    #[test]
    fn two_apps_serialize_their_io() {
        let p = platform();
        let mut b = ScheduleBuilder::new(&p, &[app(0), app(1)], Time::secs(12.0));
        assert!(b.try_insert(0));
        assert!(b.try_insert(1));
        let s = b.build();
        s.validate(&p).unwrap();
        // Both computes run [0, 8); both need 10 GiB/s for 2 s. App 1's
        // transfer must wait for app 0's: [8, 10) then [10, 12).
        let io0 = s.plans[0].instances[0];
        let io1 = s.plans[1].instances[0];
        assert!(io0.io_start.approx_eq(Time::secs(8.0)));
        assert!(io1.io_start.approx_eq(Time::secs(10.0)));
    }

    #[test]
    fn ladder_falls_back_to_half_rate() {
        let p = platform();
        // App 1 needs exactly half the PFS: 50 procs → 5 GiB/s cap.
        let small = PeriodicAppSpec::new(1, 50, Time::secs(2.0), Bytes::gib(10.0));
        // App 0 occupies 5 GiB/s for the whole period.
        let hog = PeriodicAppSpec::new(0, 50, Time::ZERO, Bytes::gib(50.0));
        let mut b = ScheduleBuilder::new(&p, &[hog, small], Time::secs(10.0));
        assert!(b.try_insert(0), "hog reserves 5 GiB/s over [0, 10)");
        assert!(
            b.try_insert(1),
            "small app should fit in the leftover 5 GiB/s"
        );
        let s = b.build();
        s.validate(&p).unwrap();
        let io = s.plans[1].instances[0];
        assert!(io.io_bw.approx_le(Bw::gib_per_sec(5.0)));
    }

    #[test]
    fn pure_compute_app_needs_no_bandwidth() {
        let p = platform();
        let compute_only = PeriodicAppSpec::new(0, 10, Time::secs(3.0), Bytes::ZERO);
        let mut b = ScheduleBuilder::new(&p, &[compute_only], Time::secs(10.0));
        assert!(b.try_insert(0));
        assert!(b.try_insert(0));
        assert!(b.try_insert(0));
        assert!(!b.try_insert(0)); // 4×3 s > 10 s
        let s = b.build();
        s.validate(&p).unwrap();
        assert_eq!(s.n_per(AppId(0)), 3);
    }

    #[test]
    fn from_app_requires_periodicity() {
        use iosched_model::{AppSpec, Instance, InstancePattern};
        let periodic = AppSpec::periodic(0, Time::ZERO, 10, Time::secs(1.0), Bytes::gib(1.0), 5);
        assert!(PeriodicAppSpec::from_app(&periodic).is_ok());
        let aperiodic = AppSpec::new(
            0,
            Time::ZERO,
            10,
            InstancePattern::Explicit(vec![
                Instance::new(Time::secs(1.0), Bytes::gib(1.0)),
                Instance::new(Time::secs(2.0), Bytes::gib(1.0)),
            ]),
        );
        assert!(PeriodicAppSpec::from_app(&aperiodic).is_err());
    }

    #[test]
    fn insert_fails_when_period_too_short() {
        let p = platform();
        let mut b = ScheduleBuilder::new(&p, &[app(0)], Time::secs(9.0));
        // Compute fits ([0,8)) but I/O needs [8,10) > period at any ladder
        // rate (even 1.25 GiB/s needs 16 s).
        assert!(!b.try_insert(0));
        assert_eq!(b.n_per(0), 0);
    }
}
