//! The two insertion orders of §3.2.3.
//!
//! * **Insert-In-Schedule-Throu** "sorts the applications by non-decreasing
//!   `w(k)/time_io(k)` ratios. It schedules as many instances as possible
//!   of the first application before moving on to the second one."
//! * **Insert-In-Schedule-Cong** "dynamically sorts the applications by
//!   [their current periodic dilation] and always picks the [most dilated]
//!   one" — i.e. the application whose `n_per·(w + time_io)` is currently
//!   smallest (steady-state dilation is `T / (n_per·(w+time_io))`). The
//!   research report prints this rule as "non-increasing n_per(w + vol_io),
//!   pick the largest"; picking the *largest* would starve never-scheduled
//!   applications forever, so we implement the only reading consistent
//!   with the Dilation objective (see DESIGN.md §3).

use super::builder::{PeriodicAppSpec, ScheduleBuilder};
use super::schedule::PeriodicSchedule;
use iosched_model::Platform;
use serde::{Deserialize, Serialize};

/// Which §3.2.3 insertion heuristic fills the period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsertionHeuristic {
    /// Insert-In-Schedule-Throu (SysEfficiency-oriented).
    Throughput,
    /// Insert-In-Schedule-Cong (Dilation-oriented).
    Congestion,
}

impl InsertionHeuristic {
    /// Report name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Throughput => "insert-in-schedule-throu",
            Self::Congestion => "insert-in-schedule-cong",
        }
    }
}

/// Fill one period of length `period` with instances of `apps` using
/// `heuristic`, and return the resulting schedule.
#[must_use]
pub fn build_schedule(
    platform: &Platform,
    apps: &[PeriodicAppSpec],
    period: iosched_model::Time,
    heuristic: InsertionHeuristic,
) -> PeriodicSchedule {
    let mut builder = ScheduleBuilder::new(platform, apps, period);
    match heuristic {
        InsertionHeuristic::Throughput => {
            let mut order: Vec<usize> = (0..apps.len()).collect();
            order.sort_by(|&x, &y| {
                let rx = ratio(&apps[x], platform);
                let ry = ratio(&apps[y], platform);
                rx.total_cmp(&ry).then_with(|| apps[x].id.cmp(&apps[y].id))
            });
            for idx in order {
                while builder.try_insert(idx) {}
            }
        }
        InsertionHeuristic::Congestion => {
            let mut saturated = vec![false; apps.len()];
            loop {
                // Most dilated first: smallest n_per · (w + time_io).
                let next = (0..apps.len()).filter(|&i| !saturated[i]).min_by(|&x, &y| {
                    let kx = builder.n_per(x) as f64 * apps[x].span(platform).as_secs();
                    let ky = builder.n_per(y) as f64 * apps[y].span(platform).as_secs();
                    kx.total_cmp(&ky).then_with(|| apps[x].id.cmp(&apps[y].id))
                });
                let Some(idx) = next else { break };
                if !builder.try_insert(idx) {
                    saturated[idx] = true;
                }
            }
        }
    }
    builder.build()
}

/// The Throu sort key `w / time_io` (∞ for pure-compute applications —
/// they cost no bandwidth and are inserted last, where they always fit).
fn ratio(app: &PeriodicAppSpec, platform: &Platform) -> f64 {
    let tio = app.time_io(platform);
    if tio.get() <= 0.0 {
        f64::INFINITY
    } else {
        app.work / tio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::{AppId, Bw, Bytes, Time};

    fn platform() -> Platform {
        Platform::new("test", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    #[test]
    fn throughput_orders_by_io_intensity() {
        let p = platform();
        // App 0: w/tio = 8/2 = 4. App 1: w/tio = 2/2 = 1 (more I/O-bound).
        let apps = [
            PeriodicAppSpec::new(0, 100, Time::secs(8.0), Bytes::gib(20.0)),
            PeriodicAppSpec::new(1, 100, Time::secs(2.0), Bytes::gib(20.0)),
        ];
        let s = build_schedule(&p, &apps, Time::secs(12.0), InsertionHeuristic::Throughput);
        s.validate(&p).unwrap();
        // App 1 (ratio 1) is inserted first: compute [0,2), I/O [2,4);
        // then app 0: compute [0,8), I/O [8,10).
        assert!(s.plans[1].instances[0].io_start.approx_eq(Time::secs(2.0)));
        assert!(s.plans[0].instances[0].io_start.approx_eq(Time::secs(8.0)));
    }

    #[test]
    fn congestion_round_robins_instances() {
        let p = platform();
        let apps = [
            PeriodicAppSpec::new(0, 100, Time::secs(8.0), Bytes::gib(20.0)),
            PeriodicAppSpec::new(1, 100, Time::secs(8.0), Bytes::gib(20.0)),
        ];
        let s = build_schedule(&p, &apps, Time::secs(24.0), InsertionHeuristic::Congestion);
        s.validate(&p).unwrap();
        // Identical apps must end with (nearly) identical instance counts.
        let n0 = s.n_per(AppId(0));
        let n1 = s.n_per(AppId(1));
        assert!(n0 >= 1 && n1 >= 1);
        assert!((n0 as i64 - n1 as i64).abs() <= 1, "n0={n0} n1={n1}");
    }

    #[test]
    fn congestion_never_starves_an_app_that_fits() {
        let p = platform();
        // One very cheap app and one expensive app; the cheap one must not
        // absorb the whole period before the expensive one gets a slot.
        let apps = [
            PeriodicAppSpec::new(0, 100, Time::secs(1.0), Bytes::gib(2.0)),
            PeriodicAppSpec::new(1, 100, Time::secs(30.0), Bytes::gib(100.0)),
        ];
        let span1 = apps[1].span(&p); // 30 + 10 = 40 s
        let s = build_schedule(&p, &apps, span1 * 1.5, InsertionHeuristic::Congestion);
        s.validate(&p).unwrap();
        assert!(s.n_per(AppId(1)) >= 1, "expensive app must be scheduled");
        assert!(s.n_per(AppId(0)) >= 1);
    }

    #[test]
    fn both_heuristics_produce_valid_schedules_on_a_mix() {
        let p = platform();
        let apps: Vec<PeriodicAppSpec> = (0..6)
            .map(|i| {
                PeriodicAppSpec::new(
                    i,
                    50 + 30 * i as u64,
                    Time::secs(5.0 + i as f64),
                    Bytes::gib(4.0 + 2.0 * i as f64),
                )
            })
            .collect();
        for h in [
            InsertionHeuristic::Throughput,
            InsertionHeuristic::Congestion,
        ] {
            let s = build_schedule(&p, &apps, Time::secs(120.0), h);
            s.validate(&p).unwrap();
            let total: usize = s.plans.iter().map(|pl| pl.n_per()).sum();
            assert!(total > 0, "{}: nothing scheduled", h.name());
        }
    }

    #[test]
    fn names_are_the_paper_names() {
        assert_eq!(
            InsertionHeuristic::Throughput.name(),
            "insert-in-schedule-throu"
        );
        assert_eq!(
            InsertionHeuristic::Congestion.name(),
            "insert-in-schedule-cong"
        );
    }
}
