//! The online scheduling abstraction of §3.1.
//!
//! The global scheduler "monitors the stream of I/O calls and decides on the
//! fly which applications are allowed to perform I/O". An *event* is the
//! start or end of an I/O transfer (plus, in our simulator, releases and
//! burst-buffer level crossings). At each event the scheduler inspects the
//! current state — application efficiencies and the amount of I/O performed
//! — and, following its strategy, *favors* a subset of applications:
//! a favored application receives bandwidth `min(β·b, bw_avail)` where
//! `bw_avail` is what remains of `B` when its turn comes; the others are
//! stalled until the next event.
//!
//! Policies are pure ordering strategies over [`AppState`] snapshots plus
//! the shared greedy grant loop [`greedy_allocate`]; this keeps every
//! heuristic of the paper a ~30-line module and guarantees they all enforce
//! the two §2.1 capacity rules identically.

use iosched_model::{AppId, Bw, Time};
use serde::{Deserialize, Serialize};

/// Scheduler-visible snapshot of one application that currently wants to
/// perform I/O (it is either stalled waiting for a grant or mid-transfer).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AppState {
    /// Which application.
    pub id: AppId,
    /// `β(k)`: dedicated processors.
    pub procs: u64,
    /// Current dilation ratio `ρ̃(k)(t)/ρ(k)(t) ∈ [0, 1]` (1 = on schedule).
    pub dilation_ratio: f64,
    /// Current MaxSysEff key `β(k)·ρ̃(k)(t)`.
    pub syseff_key: f64,
    /// When this application last completed an instance's I/O transfer
    /// (its release time if it never has). RoundRobin's FCFS key.
    pub last_io_end: Time,
    /// When the current I/O request was issued (= when the compute chunk
    /// of the current instance ended). Strict-FCFS baselines order by this.
    pub io_requested_at: Time,
    /// True when the current transfer has already started (some bytes of
    /// the current instance were transferred). The Priority wrapper serves
    /// these applications first to preserve disk locality.
    pub started_io: bool,
    /// Maximum bandwidth this application can absorb: `min(β·b, B)`.
    pub max_bw: Bw,
}

/// Everything a policy may look at when re-allocating bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct SchedContext<'a> {
    /// Current time.
    pub now: Time,
    /// Total PFS bandwidth `B`.
    pub total_bw: Bw,
    /// Applications that want to perform I/O right now, in `AppId` order.
    pub pending: &'a [AppState],
    /// Congestion telemetry from the driving engine's tap, when one is
    /// attached (`None` on the initial allocation or under drivers
    /// without telemetry). The open-loop roster ignores it; the
    /// [`crate::control`] family closes its feedback loop on it.
    pub signal: Option<crate::control::CongestionSignal>,
}

/// Bandwidth grants decided at one event: application-level bandwidths
/// `β(k)·γ(k)`. Applications absent from `grants` are stalled (`γ = 0`).
///
/// **Invariant:** `grants` is sorted by ascending [`AppId`] with at most
/// one entry per application. [`greedy_allocate`] establishes it, the
/// in-tree policies that build grants directly emit pending order (which
/// is `AppId` order by the [`StateBuffer`] contract), and
/// [`Allocation::validate`] enforces it — so lookups can binary-search
/// and drivers can merge-walk grants against their own `AppId`-ordered
/// application lists instead of scanning per application.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// `(app, application-aggregate bandwidth)` pairs, sorted by `AppId`;
    /// at most one per app.
    pub grants: Vec<(AppId, Bw)>,
}

impl Allocation {
    /// An allocation granting nothing.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Granted bandwidth for `id` (zero if stalled). Binary search over
    /// the `AppId`-sorted grants.
    #[must_use]
    pub fn granted(&self, id: AppId) -> Bw {
        self.grants
            .binary_search_by_key(&id, |&(a, _)| a)
            .map_or(Bw::ZERO, |i| self.grants[i].1)
    }

    /// Total granted bandwidth.
    #[must_use]
    pub fn total(&self) -> Bw {
        self.grants.iter().map(|(_, bw)| *bw).sum()
    }

    /// Check the §2.1 capacity rules against a context: per-application
    /// `grant ≤ min(β·b, B)` and aggregate `Σ grants ≤ B`, plus the
    /// sortedness invariant documented on [`Allocation`]. Returns the
    /// first violation as a human-readable string.
    ///
    /// `ctx.pending` is in `AppId` order (the [`StateBuffer`] contract),
    /// so one merge walk over `grants` and `pending` checks ordering,
    /// duplicates and membership in `O(grants + pending)` instead of the
    /// per-grant linear scans a naive check would need.
    pub fn validate(&self, ctx: &SchedContext<'_>) -> Result<(), String> {
        let mut prev: Option<AppId> = None;
        let mut pi = 0usize;
        for &(id, bw) in &self.grants {
            match prev {
                Some(p) if p == id => return Err(format!("duplicate grant for {id}")),
                Some(p) if p > id => {
                    return Err(format!(
                        "grants not sorted by AppId ({p} precedes {id}); policies must \
                         emit AppId-ordered grants"
                    ));
                }
                _ => {}
            }
            prev = Some(id);
            while pi < ctx.pending.len() && ctx.pending[pi].id < id {
                pi += 1;
            }
            let Some(app) = ctx.pending.get(pi).filter(|a| a.id == id) else {
                return Err(format!("grant for non-pending {id}"));
            };
            if !bw.is_finite() || bw.get() < 0.0 {
                return Err(format!("non-finite or negative grant for {id}: {bw}"));
            }
            if bw.approx_gt(app.max_bw) {
                return Err(format!("{id} granted {bw} above its cap {}", app.max_bw));
            }
        }
        if self.total().approx_gt(ctx.total_bw) {
            return Err(format!(
                "aggregate grant {} exceeds B = {}",
                self.total(),
                ctx.total_bw
            ));
        }
        Ok(())
    }
}

/// Reusable arena for the [`AppState`] snapshots a scheduler consumes.
///
/// Every driver of an [`OnlinePolicy`] — the fluid simulator, the IOR
/// harness's scheduler thread — rebuilds the pending-application snapshot
/// at each event. Allocating a fresh `Vec<AppState>` per event dominates
/// the steady-state allocation profile of a simulation, so drivers keep
/// one `StateBuffer` alive and refill it in place: [`clear`] + [`push`]
/// reuse the existing capacity, and [`context`] borrows the snapshot as
/// the [`SchedContext`] handed to the policy.
///
/// The driver is responsible for pushing snapshots in `AppId` order
/// (policies tie-break on `AppId` and the shared grant loop assumes a
/// deterministic pending order).
///
/// [`clear`]: StateBuffer::clear
/// [`push`]: StateBuffer::push
/// [`context`]: StateBuffer::context
#[derive(Debug, Default)]
pub struct StateBuffer {
    states: Vec<AppState>,
}

impl StateBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop the previous snapshot, keeping the allocation.
    pub fn clear(&mut self) {
        self.states.clear();
    }

    /// Append one application snapshot.
    pub fn push(&mut self, state: AppState) {
        self.states.push(state);
    }

    /// The current snapshot.
    #[must_use]
    pub fn states(&self) -> &[AppState] {
        &self.states
    }

    /// Number of pending applications in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when no application is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Borrow the snapshot as the context a policy allocates against.
    #[must_use]
    pub fn context(&self, now: Time, total_bw: Bw) -> SchedContext<'_> {
        self.context_with_signal(now, total_bw, None)
    }

    /// Borrow the snapshot as a context carrying a congestion signal
    /// (drivers with a telemetry tap — the fluid engine — hand the last
    /// observation to the policy through this).
    #[must_use]
    pub fn context_with_signal(
        &self,
        now: Time,
        total_bw: Bw,
        signal: Option<crate::control::CongestionSignal>,
    ) -> SchedContext<'_> {
        SchedContext {
            now,
            total_bw,
            pending: &self.states,
            signal,
        }
    }
}

/// Reusable workspace for the in-place allocation path
/// ([`OnlinePolicy::allocate_into`]): the output [`Allocation`] plus the
/// keyed/order scratch the sorting helpers fill.
///
/// Rebuilding a preference order allocates a `Vec<usize>` per event and
/// recomputes every ordering key once per *comparison*; at millions of
/// events this dominates the policy-side profile. Drivers keep one
/// `AllocScratch` alive across events (next to their [`StateBuffer`]) so
/// a policy that overrides `allocate_into`/`order_into` runs the whole
/// decision without touching the heap: keys are computed once per
/// application into `keyed`, the permutation lands in `order`, and the
/// grants in `alloc.grants` — all retaining their capacity.
#[derive(Debug, Default)]
pub struct AllocScratch {
    /// The allocation decided by the last [`OnlinePolicy::allocate_into`].
    pub alloc: Allocation,
    /// `(key-image, id, pending-index)` sorting workspace of
    /// [`order_into_by_key_asc`]: the `f64` key mapped through the
    /// IEEE-754 total-order bijection so the sort compares plain
    /// integers, with the tie-breaking `AppId` carried inline.
    pub(crate) keyed: Vec<(u64, u64, usize)>,
    /// Preference order: indices into the pending slice, most-favored
    /// first.
    pub(crate) order: Vec<usize>,
    /// Secondary index workspace (stable partitions, e.g.
    /// [`crate::heuristics::Priority`]).
    pub(crate) tmp: Vec<usize>,
    /// Per-pending-index grant workspace of [`greedy_allocate_into`]
    /// (lets the grant list come out in pending order without a sort).
    pub(crate) grant_buf: Vec<Bw>,
}

impl AllocScratch {
    /// A fresh, empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The preference order filled by the last
    /// [`OnlinePolicy::order_into`] call.
    #[must_use]
    pub fn order(&self) -> &[usize] {
        &self.order
    }
}

/// An online scheduling strategy (§3.1).
///
/// A strategy is fundamentally a *preference order* over the pending
/// applications; the grant loop ([`greedy_allocate`]) is shared by all of
/// them, which guarantees that every heuristic enforces the §2.1 capacity
/// rules identically. Implementations must be deterministic functions of
/// the context (ties broken by `AppId`), so simulations are reproducible.
pub trait OnlinePolicy: Send {
    /// Human-readable name used in reports ("maxsyseff", "priority-mindilation", …).
    fn name(&self) -> String;

    /// Preference order: indices into `ctx.pending`, most-favored first.
    /// Must be a permutation of `0..ctx.pending.len()`.
    fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize>;

    /// Decide bandwidth grants for the pending applications by running the
    /// shared greedy grant loop over [`OnlinePolicy::order`].
    fn allocate(&mut self, ctx: &SchedContext<'_>) -> Allocation {
        let order = self.order(ctx);
        greedy_allocate(ctx, &order)
    }

    /// Fill `scratch.order` with [`OnlinePolicy::order`]'s permutation.
    /// The default copies the allocating path's result; policies on hot
    /// paths override it (typically via [`order_into_by_key_asc`]) so the
    /// steady-state decision allocates nothing. Overrides must produce
    /// exactly the permutation `order` would.
    fn order_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        let order = self.order(ctx);
        scratch.order.clear();
        scratch.order.extend(order);
    }

    /// Allocation entry point for drivers that reuse buffers across
    /// events: decide the grants into `scratch.alloc`. The default
    /// delegates to [`OnlinePolicy::allocate`]; overrides must be
    /// bit-identical to it — drivers may use either entry point
    /// interchangeably (the fluid engine drives this one).
    fn allocate_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        scratch.alloc = self.allocate(ctx);
    }

    /// Next instant (strictly after `now`) at which this policy wants to
    /// re-allocate even though no application event occurred. Event-driven
    /// policies (all of §3.1) never do — the default `None`. Timetable
    /// policies (periodic schedules replayed in the simulator) use this to
    /// wake the engine at reservation boundaries; a policy returning
    /// wakeups is also permitted to stall every pending application, since
    /// it is guaranteed to be consulted again.
    fn next_wakeup(&self, now: Time) -> Option<Time> {
        let _ = now;
        None
    }
}

impl<P: OnlinePolicy + ?Sized> OnlinePolicy for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
        (**self).order(ctx)
    }
    fn allocate(&mut self, ctx: &SchedContext<'_>) -> Allocation {
        (**self).allocate(ctx)
    }
    fn order_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        (**self).order_into(ctx, scratch);
    }
    fn allocate_into(&mut self, ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
        (**self).allocate_into(ctx, scratch);
    }
    fn next_wakeup(&self, now: Time) -> Option<Time> {
        (**self).next_wakeup(now)
    }
}

/// The shared grant loop: walk `order` (application indices into
/// `ctx.pending`, most-favored first) and give each application
/// `min(max_bw, bw_avail)` until the PFS is saturated.
///
/// This is exactly the paper's "favoring application App(k) means that
/// App(k) is executed as fast as possible, with bandwidth
/// `min(b·β(k), bw_avail)`". The grants are returned in `AppId` order
/// (the [`Allocation`] invariant), not preference order — the preference
/// only decides *how much* each application gets.
#[must_use]
pub fn greedy_allocate(ctx: &SchedContext<'_>, order: &[usize]) -> Allocation {
    let mut remaining = ctx.total_bw;
    let mut grants = Vec::with_capacity(order.len());
    for &idx in order {
        if remaining.get() <= 0.0 || remaining.is_zero() {
            break;
        }
        let app = &ctx.pending[idx];
        let bw = app.max_bw.min(remaining);
        if bw.get() > 0.0 {
            grants.push((app.id, bw));
            remaining -= bw;
            remaining = remaining.snap_zero();
        }
    }
    grants.sort_unstable_by_key(|&(id, _)| id);
    Allocation { grants }
}

/// In-place twin of [`greedy_allocate`]: run the shared grant loop over
/// `scratch.order` writing into `scratch.alloc`. Bit-identical to the
/// allocating path — same operations on the same values in the same
/// order; only the destination vector is reused.
pub fn greedy_allocate_into(ctx: &SchedContext<'_>, scratch: &mut AllocScratch) {
    // The grant loop runs in preference order (the budget consumption is
    // sequential), but the grants are *scattered* into a per-pending-index
    // buffer and then emitted in pending order. When the driver's pending
    // slice is `AppId`-ascending — the fluid engine's `StateBuffer`
    // contract — the emitted list is already sorted and the final sort is
    // a no-op check; the grant values are identical either way (same
    // `remaining` sequence in the same order).
    scratch.grant_buf.clear();
    scratch.grant_buf.resize(ctx.pending.len(), Bw::ZERO);
    let mut remaining = ctx.total_bw;
    for &idx in &scratch.order {
        if remaining.get() <= 0.0 || remaining.is_zero() {
            break;
        }
        let app = &ctx.pending[idx];
        let bw = app.max_bw.min(remaining);
        if bw.get() > 0.0 {
            scratch.grant_buf[idx] = bw;
            remaining -= bw;
            remaining = remaining.snap_zero();
        }
    }
    let grants = &mut scratch.alloc.grants;
    grants.clear();
    for (idx, &bw) in scratch.grant_buf.iter().enumerate() {
        if bw.get() > 0.0 {
            grants.push((ctx.pending[idx].id, bw));
        }
    }
    if !grants.is_sorted_by_key(|&(id, _)| id) {
        grants.sort_unstable_by_key(|&(id, _)| id);
    }
}

/// In-place twin of [`order_by_key_asc`]: fill `scratch.order` with the
/// pending-app indices ordered by `key` ascending, ties broken by
/// `AppId`. Produces exactly the allocating helper's permutation — the
/// key is a pure function of the [`AppState`], so computing it once per
/// application (instead of once per comparison) cannot change it, and
/// the comparator is strict on distinct applications (ids are unique),
/// so the unstable sort is deterministic.
pub fn order_into_by_key_asc<F: FnMut(&AppState) -> f64>(
    ctx: &SchedContext<'_>,
    scratch: &mut AllocScratch,
    mut key: F,
) {
    // Map each key through the IEEE-754 total-order bijection (flip all
    // bits of negatives, set the sign bit of non-negatives): `u64` order
    // on the images is exactly `f64::total_cmp` on the keys. Sorting
    // `(image, id)` pairs as integers therefore yields precisely the
    // comparator-based permutation — and keeps the hot comparison free of
    // indirect loads. That matters because keys tie *often* (e.g.
    // `dilation_ratio` saturates at exactly 1.0 for every undelayed
    // application), and the old closure resolved every tie with two
    // random-access `pending[·].id` lookups.
    scratch.keyed.clear();
    scratch
        .keyed
        .extend(ctx.pending.iter().enumerate().map(|(i, a)| {
            let b = key(a).to_bits();
            let image = if b >> 63 == 1 { !b } else { b | (1 << 63) };
            (image, a.id.0 as u64, i)
        }));
    scratch.keyed.sort_unstable_by_key(|&(k, id, _)| (k, id));
    scratch.order.clear();
    scratch
        .order
        .extend(scratch.keyed.iter().map(|&(_, _, i)| i));
}

/// Sort helper: returns pending-app indices ordered by `key` ascending,
/// ties broken by `AppId` so every policy is deterministic.
#[must_use]
pub fn order_by_key_asc<F: FnMut(&AppState) -> f64>(
    ctx: &SchedContext<'_>,
    mut key: F,
) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..ctx.pending.len()).collect();
    idx.sort_by(|&a, &b| {
        let (ka, kb) = (key(&ctx.pending[a]), key(&ctx.pending[b]));
        ka.total_cmp(&kb)
            .then_with(|| ctx.pending[a].id.cmp(&ctx.pending[b].id))
    });
    idx
}

/// Tiny fixtures for policy unit tests (used by this crate and by the
/// baseline/bench crates' test suites; not part of the stable API).
#[doc(hidden)]
pub mod test_support {
    use super::*;

    /// Build a pending-app snapshot with sensible defaults for tests.
    #[must_use]
    pub fn app(id: usize, max_bw_gib: f64) -> AppState {
        AppState {
            id: AppId(id),
            procs: 100,
            dilation_ratio: 1.0,
            syseff_key: 100.0,
            last_io_end: Time::ZERO,
            io_requested_at: Time::ZERO,
            started_io: false,
            max_bw: Bw::gib_per_sec(max_bw_gib),
        }
    }

    /// Build a context over `pending` with total bandwidth `total_gib`.
    #[must_use]
    pub fn ctx(total_gib: f64, pending: &[AppState]) -> SchedContext<'_> {
        SchedContext {
            now: Time::secs(100.0),
            total_bw: Bw::gib_per_sec(total_gib),
            pending,
            signal: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::{app, ctx};
    use super::*;

    #[test]
    fn greedy_grants_in_order_until_saturation() {
        let pending = [app(0, 6.0), app(1, 6.0), app(2, 6.0)];
        let c = ctx(10.0, &pending);
        let alloc = greedy_allocate(&c, &[0, 1, 2]);
        assert!(alloc.granted(AppId(0)).approx_eq(Bw::gib_per_sec(6.0)));
        assert!(alloc.granted(AppId(1)).approx_eq(Bw::gib_per_sec(4.0)));
        assert!(alloc.granted(AppId(2)).is_zero());
        alloc.validate(&c).unwrap();
    }

    #[test]
    fn greedy_respects_order_argument() {
        let pending = [app(0, 10.0), app(1, 10.0)];
        let c = ctx(10.0, &pending);
        let alloc = greedy_allocate(&c, &[1, 0]);
        assert!(alloc.granted(AppId(1)).approx_eq(Bw::gib_per_sec(10.0)));
        assert!(alloc.granted(AppId(0)).is_zero());
    }

    #[test]
    fn greedy_with_no_pending_grants_nothing() {
        let pending: [AppState; 0] = [];
        let c = ctx(10.0, &pending);
        let alloc = greedy_allocate(&c, &[]);
        assert!(alloc.grants.is_empty());
        assert!(alloc.total().is_zero());
    }

    #[test]
    fn allocation_lookup_and_total() {
        let alloc = Allocation {
            grants: vec![
                (AppId(0), Bw::gib_per_sec(2.0)),
                (AppId(3), Bw::gib_per_sec(1.0)),
            ],
        };
        assert!(alloc.granted(AppId(0)).approx_eq(Bw::gib_per_sec(2.0)));
        assert!(alloc.granted(AppId(1)).is_zero());
        assert!(alloc.total().approx_eq(Bw::gib_per_sec(3.0)));
    }

    #[test]
    fn validate_catches_overcommit() {
        let pending = [app(0, 6.0), app(1, 6.0)];
        let c = ctx(10.0, &pending);
        let alloc = Allocation {
            grants: vec![
                (AppId(0), Bw::gib_per_sec(6.0)),
                (AppId(1), Bw::gib_per_sec(6.0)),
            ],
        };
        assert!(alloc.validate(&c).is_err());
    }

    #[test]
    fn validate_catches_per_app_cap() {
        let pending = [app(0, 2.0)];
        let c = ctx(10.0, &pending);
        let alloc = Allocation {
            grants: vec![(AppId(0), Bw::gib_per_sec(3.0))],
        };
        assert!(alloc.validate(&c).is_err());
    }

    #[test]
    fn validate_catches_duplicates_and_strangers() {
        let pending = [app(0, 2.0)];
        let c = ctx(10.0, &pending);
        let dup = Allocation {
            grants: vec![
                (AppId(0), Bw::gib_per_sec(1.0)),
                (AppId(0), Bw::gib_per_sec(1.0)),
            ],
        };
        assert!(dup.validate(&c).is_err());
        let stranger = Allocation {
            grants: vec![(AppId(7), Bw::gib_per_sec(1.0))],
        };
        assert!(stranger.validate(&c).is_err());
    }

    #[test]
    fn greedy_returns_grants_in_app_id_order() {
        let pending = [app(0, 4.0), app(1, 4.0), app(2, 4.0)];
        let c = ctx(10.0, &pending);
        // Preference order 2, 0, 1 — grants still come back id-sorted.
        let alloc = greedy_allocate(&c, &[2, 0, 1]);
        let ids: Vec<usize> = alloc.grants.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        alloc.validate(&c).unwrap();
    }

    #[test]
    fn validate_rejects_unsorted_grants() {
        let pending = [app(0, 2.0), app(1, 2.0)];
        let c = ctx(10.0, &pending);
        let unsorted = Allocation {
            grants: vec![
                (AppId(1), Bw::gib_per_sec(1.0)),
                (AppId(0), Bw::gib_per_sec(1.0)),
            ],
        };
        let err = unsorted.validate(&c).unwrap_err();
        assert!(err.contains("sorted"), "unexpected error: {err}");
    }

    #[test]
    fn order_by_key_breaks_ties_by_id() {
        let pending = [app(2, 1.0), app(0, 1.0), app(1, 1.0)];
        let c = ctx(10.0, &pending);
        let order = order_by_key_asc(&c, |_| 0.0);
        let ids: Vec<usize> = order.iter().map(|&i| pending[i].id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn order_into_matches_the_allocating_helper() {
        // Unsorted pending with key ties: the scratch path must
        // reproduce the allocating helper's permutation exactly,
        // including the AppId tie-break.
        let mut pending = [app(2, 1.0), app(0, 1.0), app(1, 1.0), app(3, 1.0)];
        pending[0].dilation_ratio = 0.5;
        pending[3].dilation_ratio = 0.5;
        let c = ctx(10.0, &pending);
        let mut scratch = AllocScratch::new();
        order_into_by_key_asc(&c, &mut scratch, |a| a.dilation_ratio);
        assert_eq!(scratch.order(), order_by_key_asc(&c, |a| a.dilation_ratio));
    }

    #[test]
    fn greedy_into_is_bit_identical_to_greedy() {
        let pending = [app(0, 6.0), app(1, 6.0), app(2, 6.0)];
        let c = ctx(10.0, &pending);
        let mut scratch = AllocScratch::new();
        scratch.order = vec![2, 0, 1];
        greedy_allocate_into(&c, &mut scratch);
        let reference = greedy_allocate(&c, &[2, 0, 1]);
        assert_eq!(scratch.alloc.grants.len(), reference.grants.len());
        for ((ia, ba), (ib, bb)) in scratch.alloc.grants.iter().zip(&reference.grants) {
            assert_eq!(ia, ib);
            assert_eq!(ba.get().to_bits(), bb.get().to_bits());
        }
    }

    #[test]
    fn default_allocate_into_delegates_to_allocate() {
        struct Fixed;
        impl OnlinePolicy for Fixed {
            fn name(&self) -> String {
                "fixed".into()
            }
            fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
                (0..ctx.pending.len()).rev().collect()
            }
        }
        let pending = [app(0, 6.0), app(1, 6.0)];
        let c = ctx(10.0, &pending);
        let mut scratch = AllocScratch::new();
        Fixed.allocate_into(&c, &mut scratch);
        assert_eq!(scratch.alloc, Fixed.allocate(&c));
        Fixed.order_into(&c, &mut scratch);
        assert_eq!(scratch.order(), Fixed.order(&c));
    }
}
