//! # hpc-io-sched
//!
//! Umbrella crate for the reproduction of *"Scheduling the I/O of HPC
//! applications under congestion"* (Gainaru, Aupy, Benoit, Cappello,
//! Robert, Snir — IPDPS 2015).
//!
//! This crate re-exports the workspace members under short names and hosts
//! the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`). See `README.md` for the architecture overview and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use iosched_baselines as baselines;
pub use iosched_core as core;
pub use iosched_ior as ior;
pub use iosched_model as model;
pub use iosched_sim as sim;
pub use iosched_workload as workload;
