//! `RAYON_NUM_THREADS` handling of the `ScenarioRunner`.
//!
//! This lives in its own test binary on purpose: `std::env::set_var` is
//! process-global and racy against concurrent `getenv` callers, so the
//! env mutation must not share a process with concurrently running
//! tests.
//! With a single `#[test]` here, nothing else runs while the
//! environment changes.

use iosched_bench::runner::ScenarioRunner;
use iosched_bench::scenario::{PolicySpec, Scenario};
use iosched_model::Platform;
use iosched_workload::congestion::congested_moment;

#[test]
fn rayon_num_threads_env_is_honored_and_result_invariant() {
    let vesta = Platform::vesta();
    let scenarios: Vec<Scenario> = (0..6u64)
        .map(|seed| {
            Scenario::new(
                format!("congested/{seed}"),
                vesta.clone(),
                congested_moment(&vesta, seed),
                PolicySpec::parse(if seed % 2 == 0 {
                    "maxsyseff"
                } else {
                    "mindilation"
                })
                .unwrap(),
            )
        })
        .collect();

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let single_runner = ScenarioRunner::new();
    assert_eq!(single_runner.threads(), 1, "env override must win");
    let single = single_runner.run_all(&scenarios);
    std::env::remove_var("RAYON_NUM_THREADS");

    let default_runner = ScenarioRunner::new();
    assert!(default_runner.threads() >= 1);
    let default = default_runner.run_all(&scenarios);

    for (s, d) in single.iter().zip(&default) {
        let (s, d) = (s.as_ref().unwrap(), d.as_ref().unwrap());
        assert_eq!(s.events, d.events);
        assert_eq!(
            s.report.sys_efficiency.to_bits(),
            d.report.sys_efficiency.to_bits(),
            "thread count changed a result"
        );
        assert_eq!(s.report.dilation.to_bits(), d.report.dilation.to_bits());
    }
}
