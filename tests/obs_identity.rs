//! Observation is free, bit for bit: every checked-in campaign cell and
//! the serve session produce byte-identical outcomes with the decision
//! trace attached and detached. This is the obs layer's core contract —
//! the trace, the metrics registry and the span timers read the engine,
//! they never steer it — and these tests pin it on the same checked-in
//! specs (`examples/campaign_*.json`) the paper figures run from.

use hpc_io_sched::model::{Platform, Time};
use hpc_io_sched::sim::{SimOutcome, Simulation};
use iosched_bench::campaign::{CampaignSpec, ScenarioSpec};
use iosched_serve::journal::{Journal, ServeSpec};
use iosched_serve::protocol::{parse_request, Request};
use iosched_serve::session::Session;
use iosched_sim::SimConfig;

const TRACE_CAP: usize = 512;

fn example(name: &str) -> CampaignSpec {
    let path = format!("{}/examples/{name}", env!("CARGO_MANIFEST_DIR"));
    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    CampaignSpec::from_json(&json).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Run one campaign cell twice — bare, then with the decision trace
/// attached — on the exact engine entry points the campaign runner uses
/// (closed roster vs open-system stream), and insist the outcomes match
/// to the bit.
fn assert_cell_identical(scenario: &ScenarioSpec) {
    let label = &scenario.label;
    let platform = scenario.platform.build().expect("platform resolves");
    let apps = scenario
        .workload
        .materialize(&platform)
        .expect("workload materializes");
    let config = scenario.config.clone().unwrap_or_default();
    let open = scenario.workload.is_open();

    let run = |traced: bool| -> SimOutcome {
        let mut policy = scenario
            .policy
            .build(&platform, &apps)
            .expect("policy builds");
        let mut sim = if open {
            Simulation::from_stream(&platform, apps.iter().cloned(), policy.as_mut(), &config)
        } else {
            Simulation::new(&platform, &apps, policy.as_mut(), &config)
        }
        .expect("scenario is valid");
        if traced {
            sim.enable_decision_trace(TRACE_CAP);
        }
        sim.run_to_completion().expect("cell runs")
    };

    let bare = run(false);
    let traced = run(true);
    assert_outcomes_identical(label, &bare, &traced);
    let trace = traced.decision_trace.expect("trace was attached");
    assert!(trace.total() > 0, "{label}: the cell left no trace records");
}

fn assert_outcomes_identical(label: &str, bare: &SimOutcome, traced: &SimOutcome) {
    assert_eq!(bare.events, traced.events, "{label}: event count diverged");
    assert_eq!(
        bare.end_time.get().to_bits(),
        traced.end_time.get().to_bits(),
        "{label}: end time diverged"
    );
    assert_eq!(
        bare.report.sys_efficiency.to_bits(),
        traced.report.sys_efficiency.to_bits(),
        "{label}: SysEfficiency diverged"
    );
    assert_eq!(
        bare.report.upper_limit.to_bits(),
        traced.report.upper_limit.to_bits(),
        "{label}: upper limit diverged"
    );
    assert_eq!(
        bare.report.dilation.to_bits(),
        traced.report.dilation.to_bits(),
        "{label}: Dilation diverged"
    );
    assert_eq!(
        bare.per_app_bytes, traced.per_app_bytes,
        "{label}: per-app byte totals diverged"
    );
    assert_eq!(
        bare.steady, traced.steady,
        "{label}: steady-state summary diverged"
    );
}

/// The Fig. 6 campaign (3 congestion mixes × the full 8-policy online
/// roster), seed axis truncated to keep the pin fast — expansion and
/// engine path are identical to the checked-in 200-seed sweep.
#[test]
fn fig6_cells_are_bit_identical_with_the_trace_attached() {
    let spec = CampaignSpec {
        seeds: vec![0, 1],
        ..example("campaign_fig6.json")
    };
    for scenario in spec.scenario_specs() {
        assert_cell_identical(&scenario);
    }
}

/// The Fig. 4 campaign: a single offline `periodic:*` cell — the
/// timetable replay path through the engine, not the online heuristics.
#[test]
fn fig4_periodic_cell_is_bit_identical_with_the_trace_attached() {
    let spec = example("campaign_fig4.json");
    for scenario in spec.scenario_specs() {
        assert_cell_identical(&scenario);
    }
}

/// One open-system cell from the stream load-sweep campaign (Poisson
/// arrivals, admission on release): the `from_stream` engine path.
#[test]
fn stream_campaign_cell_is_bit_identical_with_the_trace_attached() {
    let full = example("campaign_stream.json");
    let spec = CampaignSpec {
        workloads: vec![full.workloads[0].clone()],
        policies: vec![full.policies[0]],
        seeds: full.seeds.first().copied().into_iter().collect(),
        ..full
    };
    let cells: Vec<ScenarioSpec> = spec.scenario_specs().collect();
    assert_eq!(cells.len(), 1);
    assert_cell_identical(&cells[0]);
}

/// The control-loop campaign: the PI feedback policy reads the engine's
/// congestion telemetry — the trace must not perturb that loop either.
#[test]
fn control_campaign_cell_is_bit_identical_with_the_trace_attached() {
    let full = example("campaign_control.json");
    let spec = CampaignSpec {
        workloads: vec![full.workloads[0].clone()],
        policies: vec![full.policies[0]],
        seeds: full.seeds.first().copied().into_iter().collect(),
        ..full
    };
    let cells: Vec<ScenarioSpec> = spec.scenario_specs().collect();
    assert_eq!(cells.len(), 1);
    assert_cell_identical(&cells[0]);
}

/// The serve session: a scripted submit/advance/finish run produces the
/// same outcome bits whether or not the engine carries a decision trace
/// (and therefore whether or not `iosched trace --journal` is ever used
/// on its journal). The session's metrics registry is always on — so
/// this also pins that the always-on counters and histograms observe
/// without steering.
#[test]
fn serve_session_is_bit_identical_with_the_trace_attached() {
    let dir = std::env::temp_dir().join(format!("iosched-obs-identity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let run = |traced: bool| -> SimOutcome {
        let spec = ServeSpec {
            platform: Platform::intrepid(),
            policy: iosched_core::registry::PolicyFactory::parse("maxsyseff").unwrap(),
            accel: 0.0,
            config: SimConfig::default(),
        };
        let path = dir.join(if traced { "traced.jsonl" } else { "bare.jsonl" });
        let _ = std::fs::remove_file(&path);
        let mut policy = spec.policy.build_online(&spec.platform).unwrap();
        let mut sim = Simulation::open(&spec.platform, policy.as_mut(), &spec.config).unwrap();
        if traced {
            sim.enable_decision_trace(TRACE_CAP);
        }
        let journal = Journal::create(&path, &spec).unwrap();
        let mut session = Session::new(sim, journal, &[]).unwrap();
        for k in 0..24usize {
            let line = format!(
                r#"{{"cmd":"submit","procs":{},"work":{},"vol":{},"count":3,"release":{}}}"#,
                128 << (k % 3),
                40.0 + (k % 7) as f64,
                192.0 + 32.0 * (k % 5) as f64,
                60.0 * (k + 1) as f64,
            );
            let Ok(Request::Submit {
                submission,
                release,
            }) = parse_request(&line)
            else {
                panic!("scripted submit failed to parse");
            };
            session
                .submit(submission, release, Time::ZERO)
                .expect("accepted")
                .expect("journaled");
            session
                .advance(Time::secs(60.0 * (k + 1) as f64))
                .expect("advance");
        }
        let (outcome, accepted) = session.finish().expect("session completes");
        assert_eq!(accepted, 24);
        outcome
    };

    let bare = run(false);
    let traced = run(true);
    assert_outcomes_identical("serve session", &bare, &traced);
    let trace = traced.decision_trace.expect("trace was attached");
    assert!(trace.total() > 0, "session left no trace records");
}
