//! Open-system integration: the lazy stream path against its
//! materialized twin, the steady-state window, and the admission-order
//! invariant guarding the engine's `AppId`-keyed event structures.

use hpc_io_sched::model::{AppId, AppSpec, Bw, Bytes, Platform, Time};
use hpc_io_sched::sim::{simulate, simulate_open, simulate_stream, SimConfig, Simulation};
use hpc_io_sched::workload::{ArrivalProcess, StopRule, WorkloadSpec};
use iosched_baselines::FairShare;
use iosched_core::heuristics::PolicyKind;
use proptest::prelude::*;

fn stream_spec(rate: f64, apps: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec::Stream {
        arrivals: ArrivalProcess::Poisson { rate },
        template: Box::new(WorkloadSpec::Congestion { seed: 0 }),
        stop: StopRule::Apps(apps),
        seed,
    }
}

/// The lazy iterator and the materialized roster describe the same
/// system: feeding either into the stream engine is bit-identical.
#[test]
fn lazy_and_materialized_streams_are_bit_identical() {
    let platform = Platform::intrepid();
    let spec = stream_spec(0.001, 150, 7);
    let apps = spec.materialize(&platform).unwrap();

    let mut policy = iosched_core::heuristics::MinDilation;
    let lazy = simulate_stream(
        &platform,
        spec.app_source(&platform).unwrap(),
        &mut policy,
        &SimConfig::default(),
    )
    .unwrap();
    let mut policy = iosched_core::heuristics::MinDilation;
    let eager = simulate_open(&platform, &apps, &mut policy, &SimConfig::default()).unwrap();

    assert_eq!(lazy.events, eager.events);
    assert_eq!(
        lazy.report.sys_efficiency.to_bits(),
        eager.report.sys_efficiency.to_bits()
    );
    assert_eq!(
        lazy.report.dilation.to_bits(),
        eager.report.dilation.to_bits()
    );
    assert_eq!(lazy.per_app_bytes, eager.per_app_bytes);
    let (l, e) = (lazy.steady.unwrap(), eager.steady.unwrap());
    assert_eq!(l, e, "steady summaries must agree");
    assert_eq!(l.admitted, 150);
    assert_eq!(l.left_in_system, 0);
}

/// An MMPP burst stream runs end to end and its clustered arrivals show
/// up as a deeper queue than a Poisson stream of the same average rate.
#[test]
fn mmpp_bursts_deepen_the_queue() {
    let platform = Platform::intrepid();
    // Same long-run average rate (0.0008/s): the MMPP spends half its
    // time in each phase (equal mean dwells), so calm 0.0001 + burst
    // 0.0015 average to 0.0008 — with 15x bursts over the calm rate.
    let poisson = stream_spec(0.0008, 150, 3);
    let mmpp = WorkloadSpec::Stream {
        arrivals: ArrivalProcess::Mmpp {
            calm_rate: 0.0001,
            burst_rate: 0.0015,
            calm_secs: 20_000.0,
            burst_secs: 20_000.0,
        },
        template: Box::new(WorkloadSpec::Congestion { seed: 0 }),
        stop: StopRule::Apps(150),
        seed: 3,
    };
    let config = SimConfig {
        warmup: Time::secs(2_000.0),
        ..SimConfig::default()
    };
    let run = |spec: &WorkloadSpec| {
        let mut policy = FairShare;
        simulate_stream(
            &platform,
            spec.app_source(&platform).unwrap(),
            &mut policy,
            &config,
        )
        .unwrap()
        .steady
        .unwrap()
    };
    let flat = run(&poisson);
    let burst = run(&mmpp);
    assert!(flat.mean_queue > 0.0 && burst.mean_queue > 0.0);
    assert!(
        burst.mean_queue > flat.mean_queue,
        "bursts must queue deeper: {} vs {}",
        burst.mean_queue,
        flat.mean_queue
    );
}

/// Steppable inspection of a stream run: admissions trickle in, the
/// arena stays at concurrency size, everything drains by the end.
#[test]
fn stream_admission_is_incremental_and_bounded() {
    let platform = Platform::intrepid();
    let spec = stream_spec(0.001, 300, 11);
    let config = SimConfig {
        per_app_detail: false,
        ..SimConfig::default()
    };
    let mut policy = FairShare;
    let mut sim = Simulation::from_stream(
        &platform,
        spec.app_source(&platform).unwrap(),
        &mut policy,
        &config,
    )
    .unwrap();
    let mut saw_partial_admission = false;
    while !sim.is_finished() {
        sim.step().unwrap();
        if sim.admitted() > 0 && sim.admitted() < 50 {
            saw_partial_admission = true;
        }
    }
    assert!(saw_partial_admission, "admissions must trickle in");
    assert_eq!(sim.admitted(), 300);
    assert_eq!(sim.finished_count(), 300);
    assert!(
        sim.runtimes().len() < 100,
        "arena {} slots for 300 apps",
        sim.runtimes().len()
    );
}

/// Build a closed scenario from proptest-drawn shape tuples.
fn build_apps(raw: Vec<(u64, f64, f64, usize, f64)>) -> Vec<AppSpec> {
    raw.into_iter()
        .enumerate()
        .map(|(i, (procs, w, vol, n, rel))| {
            AppSpec::periodic(i, Time::secs(rel), procs, Time::secs(w), Bytes::gib(vol), n)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite invariant guarding the admission structures: the engine
    /// keys every event queue on `AppId`, so a *shuffled* closed roster
    /// produces bit-identical outcomes to the release-sorted one under
    /// every Fig. 6 policy.
    #[test]
    fn outcome_is_invariant_under_roster_permutation(
        raw in prop::collection::vec(
            (1u64..200, 1.0f64..120.0, 0.1f64..80.0, 1usize..5, 0.0f64..60.0),
            2..7,
        ),
        keys in prop::collection::vec(any::<u64>(), 8),
    ) {
        let platform = Platform::new(
            "perm",
            2_000,
            Bw::gib_per_sec(0.05),
            Bw::gib_per_sec(6.0),
        );
        let sorted = build_apps(raw);
        // Shuffle deterministically by the drawn keys.
        let mut order: Vec<usize> = (0..sorted.len()).collect();
        order.sort_by_key(|&i| keys[i % keys.len()].wrapping_add(i as u64));
        let shuffled: Vec<AppSpec> = order.iter().map(|&i| sorted[i].clone()).collect();
        for kind in PolicyKind::fig6_roster() {
            let mut p1 = kind.build();
            let mut p2 = kind.build();
            let a = simulate(&platform, &sorted, p1.as_mut(), &SimConfig::default())
                .expect("sorted roster is valid");
            let b = simulate(&platform, &shuffled, p2.as_mut(), &SimConfig::default())
                .expect("a permutation of a valid roster is valid");
            prop_assert_eq!(a.events, b.events, "{}: event count moved", p1.name());
            prop_assert_eq!(
                a.report.sys_efficiency.to_bits(),
                b.report.sys_efficiency.to_bits(),
                "{}: SysEfficiency moved under permutation", p1.name()
            );
            prop_assert_eq!(
                a.report.dilation.to_bits(),
                b.report.dilation.to_bits(),
                "{}: Dilation moved under permutation", p1.name()
            );
            prop_assert_eq!(&a.per_app_bytes, &b.per_app_bytes);
        }
    }
}

/// Deterministic (non-proptest) permutation sweep: every rotation and a
/// pseudo-random shuffle of a mixed roster, under every Fig. 6 policy
/// plus FairShare, must be bit-identical to the sorted roster.
#[test]
fn rotations_and_shuffles_are_bit_identical() {
    let platform = Platform::intrepid();
    let sorted = hpc_io_sched::workload::congested_moment(&platform, 9);
    let n = sorted.len();
    let mut orders: Vec<Vec<usize>> = (1..n)
        .map(|r| (0..n).map(|i| (i + r) % n).collect())
        .collect();
    // A fixed interleave as the "shuffle".
    orders.push((0..n).map(|i| (i * 7 + 3) % n).collect());

    let mut policies: Vec<Box<dyn iosched_core::policy::OnlinePolicy>> = PolicyKind::fig6_roster()
        .into_iter()
        .map(|k| k.build())
        .collect();
    policies.push(Box::new(FairShare));

    for policy in &mut policies {
        let reference = simulate(&platform, &sorted, policy.as_mut(), &SimConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", policy.name()));
        for order in &orders {
            let permuted: Vec<AppSpec> = order.iter().map(|&i| sorted[i].clone()).collect();
            let out = simulate(&platform, &permuted, policy.as_mut(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", policy.name()));
            assert_eq!(out.events, reference.events, "{}", policy.name());
            assert_eq!(
                out.report.sys_efficiency.to_bits(),
                reference.report.sys_efficiency.to_bits(),
                "{}: SysEfficiency moved under permutation",
                policy.name()
            );
            assert_eq!(
                out.report.dilation.to_bits(),
                reference.report.dilation.to_bits(),
                "{}: Dilation moved under permutation",
                policy.name()
            );
            // Per-app detail is id-sorted either way.
            assert_eq!(
                out.per_app_bytes,
                reference.per_app_bytes,
                "{}",
                policy.name()
            );
            for (a, b) in out.report.per_app.iter().zip(&reference.report.per_app) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.finish.get().to_bits(), b.finish.get().to_bits());
                assert_eq!(a.rho_tilde.to_bits(), b.rho_tilde.to_bits());
            }
        }
    }
}

/// Horizon-halted stream: the run stops at the horizon, reports the
/// window, and counts the cut-off applications.
#[test]
fn horizon_truncates_a_stream_mid_flight() {
    let platform = Platform::intrepid();
    let spec = stream_spec(0.001, 500, 5);
    let config = SimConfig {
        warmup: Time::secs(10_000.0),
        horizon: Some(Time::secs(200_000.0)),
        ..SimConfig::default()
    };
    let mut policy = FairShare;
    let out = simulate_stream(
        &platform,
        spec.app_source(&platform).unwrap(),
        &mut policy,
        &config,
    )
    .unwrap();
    assert!(out.end_time.approx_eq(Time::secs(200_000.0)));
    let steady = out.steady.unwrap();
    // ~0.001/s × 200k s ≈ 200 arrivals; some still in flight at the cut.
    assert!(steady.admitted < 500, "horizon must cut admissions short");
    assert!(steady.admitted > 150);
    assert!(steady.completed > 0);
    assert!(
        steady.left_in_system > 0,
        "someone is mid-flight at the cut"
    );
    assert!((steady.window_secs - 190_000.0).abs() < 1.0);
    // Only finished applications are in the report.
    assert_eq!(
        out.report.per_app.len(),
        steady.admitted - steady.left_in_system
    );
    for o in &out.report.per_app {
        assert!(o.finish.approx_le(Time::secs(200_000.0)));
    }
    // Ids are dense-prefix-free: the report is sorted by id.
    for w in out.report.per_app.windows(2) {
        assert!(w[0].id < w[1].id);
    }
    let _ = AppId(0);
}
