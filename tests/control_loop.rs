//! Acceptance tests for the telemetry + feedback-control subsystem:
//! under a congestion-spike campaign (external-load storms over
//! congested moments, ≥ 3 seeds) the closed-loop `control:pi` policy
//! must achieve strictly better max-dilation than uncoordinated
//! FairShare while keeping system efficiency within 5 % — and the
//! open-loop periodic schedule, squeezed by a storm it cannot observe,
//! shows why sensing matters.

use hpc_io_sched::core::control::ControlPolicy;
use hpc_io_sched::model::stats::Summary;
use hpc_io_sched::sim::{simulate, SimConfig};
use hpc_io_sched::workload::congestion::congested_moment;
use iosched_bench::campaign::{run_campaign, CampaignResult, CellSummary, PlatformSpec};
use iosched_bench::experiments::control;
use iosched_bench::runner::ScenarioRunner;
use std::sync::OnceLock;

/// The 25-run storm campaign is deterministic; run it once and share it
/// across the three assertions below.
fn storm_result() -> &'static CampaignResult {
    static RESULT: OnceLock<CampaignResult> = OnceLock::new();
    RESULT.get_or_init(|| {
        let spec = control::campaign(control::STORM_SEEDS);
        assert!(spec.seeds.len() >= 3, "acceptance bar needs >= 3 seeds");
        run_campaign(&spec, &ScenarioRunner::new()).expect("storm campaign runs")
    })
}

fn cell<'a>(result: &'a CampaignResult, policy: &str) -> &'a CellSummary {
    result
        .cell("congestion", policy)
        .unwrap_or_else(|| panic!("{policy} cell present"))
}

#[test]
fn control_pi_beats_fairshare_on_max_dilation_within_the_syseff_budget() {
    let result = storm_result();
    let control_cell = cell(result, "control:pi");
    let fairshare = cell(result, "fairshare");
    assert_eq!(control_cell.runs, control::STORM_SEEDS);
    // Strictly better max-dilation (the per-run Dilation objective *is*
    // the max over applications), averaged over the seeds…
    assert!(
        control_cell.dilation.mean < fairshare.dilation.mean,
        "control:pi dilation {} must beat fairshare {}",
        control_cell.dilation.mean,
        fairshare.dilation.mean
    );
    // …and in the worst seed too.
    assert!(
        control_cell.dilation.max < fairshare.dilation.max,
        "control:pi worst-seed dilation {} vs fairshare {}",
        control_cell.dilation.max,
        fairshare.dilation.max
    );
    // System efficiency within 5 % of FairShare's.
    assert!(
        control_cell.sys_efficiency.mean >= fairshare.sys_efficiency.mean * 0.95,
        "control:pi SysEff {} fell more than 5% below fairshare {}",
        control_cell.sys_efficiency.mean,
        fairshare.sys_efficiency.mean
    );
}

#[test]
fn open_loop_periodic_schedule_collapses_under_the_storm_it_cannot_see() {
    let result = storm_result();
    let control_cell = cell(result, "control:pi");
    let periodic = cell(result, "periodic:cong");
    // The timetable was searched for the full PFS bandwidth; the storm
    // squeezes its reservations and the replay dilates far past the
    // closed loop.
    assert!(
        control_cell.dilation.mean < periodic.dilation.mean,
        "closed loop {} must beat the blind timetable {}",
        control_cell.dilation.mean,
        periodic.dilation.mean
    );
    assert!(control_cell.sys_efficiency.mean > periodic.sys_efficiency.mean);
}

#[test]
fn storm_cells_carry_the_telemetry_aggregate() {
    let result = storm_result();
    for c in &result.cells {
        let utilization: &Summary = c
            .utilization
            .as_ref()
            .unwrap_or_else(|| panic!("{}: telemetry aggregate missing", c.policy));
        assert_eq!(utilization.n, c.runs);
        assert!(
            utilization.mean > 0.0 && utilization.mean <= 1.0 + 1e-9,
            "{}: mean utilization {}",
            c.policy,
            utilization.mean
        );
        assert!(utilization.p99 >= utilization.p95);
    }
}

/// The loop's distinctive regime: on an interference-penalizing platform
/// (native Intrepid, Fig. 1 disk-locality penalty) FairShare's
/// uncoordinated streams destroy delivered bandwidth, and the PI loop —
/// observing delivered utilization below its setpoint — sheds streams
/// until delivery recovers. Closed-loop wins on *both* objectives there.
#[test]
fn control_pi_sheds_streams_under_interference_and_wins_both_objectives() {
    let platform = PlatformSpec::Native("intrepid".into()).build().unwrap();
    let storm = SimConfig {
        external_load: Some(control::spike_load()),
        telemetry: true,
        ..SimConfig::default()
    };
    let mut effs = (Vec::new(), Vec::new());
    let mut dils = (Vec::new(), Vec::new());
    for seed in 0..3 {
        let apps = congested_moment(&platform, seed);
        let mut pi = ControlPolicy::pi_default();
        let closed = simulate(&platform, &apps, &mut pi, &storm).unwrap();
        let mut fairshare = hpc_io_sched::core::FairShare;
        let open = simulate(&platform, &apps, &mut fairshare, &storm).unwrap();
        effs.0.push(closed.report.sys_efficiency);
        effs.1.push(open.report.sys_efficiency);
        dils.0.push(closed.report.dilation);
        dils.1.push(open.report.dilation);
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    assert!(
        mean(&dils.0) < mean(&dils.1),
        "closed loop dilation {} vs fairshare {}",
        mean(&dils.0),
        mean(&dils.1)
    );
    assert!(
        mean(&effs.0) > mean(&effs.1),
        "closed loop SysEff {} vs fairshare {}",
        mean(&effs.0),
        mean(&effs.1)
    );
}
