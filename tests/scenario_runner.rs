//! Integration coverage for the `ScenarioRunner` batch layer: the
//! parallel executor must be a pure, deterministic fan-out of the
//! sequential engine — bit-identical outcomes, input-ordered, invariant
//! under the worker-thread count.

use iosched_baselines::native_platform;
use iosched_bench::campaign::{run_campaign, CampaignSpec, PlatformSpec};
use iosched_bench::runner::ScenarioRunner;
use iosched_bench::scenario::{PolicySpec, Scenario};
use iosched_model::stats::Summary;
use iosched_model::Platform;
use iosched_sim::{simulate, SimConfig, SimOutcome};
use iosched_workload::congestion::congested_moment;
use iosched_workload::{MixConfig, WorkloadSpec};

/// A mixed 20-scenario batch: two platforms, five policies, congested
/// moments and Fig. 6 mixes, with and without burst buffers.
fn mixed_batch() -> Vec<Scenario> {
    let vesta = Platform::vesta();
    let intrepid = Platform::intrepid();
    let native_vesta = native_platform(vesta.clone());
    let mut scenarios = Vec::new();
    for seed in 0..5u64 {
        let apps = congested_moment(&vesta, seed);
        for policy in ["maxsyseff", "mindilation"] {
            scenarios.push(Scenario::new(
                format!("congested/{policy}/{seed}"),
                vesta.clone(),
                apps.clone(),
                PolicySpec::parse(policy).unwrap(),
            ));
        }
    }
    for seed in 0..3u64 {
        let apps = MixConfig::fig6a().generate(&intrepid, seed);
        for policy in ["roundrobin", "priority-maxsyseff"] {
            scenarios.push(Scenario::new(
                format!("mix-a/{policy}/{seed}"),
                intrepid.clone(),
                apps.clone(),
                PolicySpec::parse(policy).unwrap(),
            ));
        }
    }
    for seed in 0..3u64 {
        scenarios.push(
            Scenario::new(
                format!("native/fairshare/{seed}"),
                native_vesta.clone(),
                congested_moment(&native_vesta, seed),
                PolicySpec::parse("fairshare").unwrap(),
            )
            .with_config(SimConfig::with_burst_buffer()),
        );
    }
    scenarios.push(Scenario::new(
        "congested/fcfs/9",
        vesta.clone(),
        congested_moment(&vesta, 9),
        PolicySpec::parse("fcfs").unwrap(),
    ));
    assert_eq!(scenarios.len(), 20);
    scenarios
}

/// Bit-level equality of two outcomes (floats compared through their
/// bit patterns: not approximately equal — *identical*).
fn assert_bit_identical(a: &SimOutcome, b: &SimOutcome, label: &str) {
    assert_eq!(a.events, b.events, "{label}: event counts differ");
    assert_eq!(
        a.end_time.get().to_bits(),
        b.end_time.get().to_bits(),
        "{label}: end times differ"
    );
    assert_eq!(
        a.report.sys_efficiency.to_bits(),
        b.report.sys_efficiency.to_bits(),
        "{label}: SysEfficiency differs"
    );
    assert_eq!(
        a.report.dilation.to_bits(),
        b.report.dilation.to_bits(),
        "{label}: Dilation differs"
    );
    assert_eq!(
        a.report.upper_limit.to_bits(),
        b.report.upper_limit.to_bits(),
        "{label}: upper limit differs"
    );
    assert_eq!(a.report.per_app.len(), b.report.per_app.len());
    for (x, y) in a.report.per_app.iter().zip(&b.report.per_app) {
        assert_eq!(x.id, y.id, "{label}: app order differs");
        assert_eq!(x.finish.get().to_bits(), y.finish.get().to_bits());
        assert_eq!(x.rho.to_bits(), y.rho.to_bits());
        assert_eq!(x.rho_tilde.to_bits(), y.rho_tilde.to_bits());
    }
    assert_eq!(a.per_app_bytes.len(), b.per_app_bytes.len());
    for ((ia, ba), (ib, bb)) in a.per_app_bytes.iter().zip(&b.per_app_bytes) {
        assert_eq!(ia, ib);
        assert_eq!(
            ba.get().to_bits(),
            bb.get().to_bits(),
            "{label}: bytes differ"
        );
    }
}

#[test]
fn parallel_runner_matches_direct_sequential_simulate() {
    let scenarios = mixed_batch();
    let parallel = ScenarioRunner::with_threads(4).run_all(&scenarios);
    assert_eq!(parallel.len(), scenarios.len());
    for (scenario, result) in scenarios.iter().zip(&parallel) {
        // The reference: a direct, sequential engine invocation.
        let mut policy = scenario
            .policy
            .build(&scenario.platform, &scenario.apps)
            .expect("batch policies build");
        let direct = simulate(
            &scenario.platform,
            &scenario.apps,
            policy.as_mut(),
            &scenario.config,
        )
        .expect("batch scenarios are valid");
        let batched = result.as_ref().expect("batch scenarios are valid");
        assert_bit_identical(batched, &direct, &scenario.label);
    }
}

#[test]
fn results_are_invariant_under_thread_count() {
    let scenarios = mixed_batch();
    let wide = ScenarioRunner::with_threads(8).run_all(&scenarios);
    let narrow = ScenarioRunner::with_threads(1).run_all(&scenarios);
    for ((scenario, w), n) in scenarios.iter().zip(&wide).zip(&narrow) {
        assert_bit_identical(w.as_ref().unwrap(), n.as_ref().unwrap(), &scenario.label);
    }
}

/// A small but heterogeneous campaign: two platforms, two workload
/// families, three policies, four seeds → 24 cells-worth of runs.
fn mixed_campaign() -> CampaignSpec {
    CampaignSpec {
        name: "itest".into(),
        platforms: vec![
            PlatformSpec::Preset("vesta".into()),
            PlatformSpec::Native("intrepid".into()),
        ],
        workloads: vec![
            WorkloadSpec::Congestion { seed: 0 },
            WorkloadSpec::Mix {
                config: MixConfig::fig6a(),
                seed: 0,
            },
        ],
        policies: vec![
            PolicySpec::parse("maxsyseff").unwrap(),
            PolicySpec::parse("priority-minmax-0.25").unwrap(),
            PolicySpec::parse("fairshare").unwrap(),
        ],
        seeds: vec![3, 5, 8, 13],
        config: None,
        threads: None,
    }
}

/// Campaign determinism: expanding a `CampaignSpec` and streaming it
/// through the parallel `run_fold` is bit-identical to building every
/// scenario sequentially, calling `Scenario::run` by hand and folding
/// manually — and invariant under the worker-thread count.
#[test]
fn campaign_run_fold_matches_sequential_manual_fold() {
    let spec = mixed_campaign();
    let rpc = spec.runs_per_cell();

    // Reference: strictly sequential expansion + per-cell manual fold.
    let mut manual_cells: Vec<Vec<SimOutcome>> = Vec::new();
    let mut current: Vec<SimOutcome> = Vec::new();
    for (idx, scenario) in spec.scenarios().enumerate() {
        let outcome = scenario
            .expect("campaign scenarios build")
            .run()
            .expect("campaign scenarios simulate");
        current.push(outcome);
        if (idx + 1) % rpc == 0 {
            manual_cells.push(std::mem::take(&mut current));
        }
    }
    assert_eq!(manual_cells.len(), spec.cell_count());

    // run_fold over the lazily expanded scenarios, folding outcomes per
    // cell, on several thread counts.
    for threads in [1, 4, 7] {
        let folded: Vec<Vec<SimOutcome>> = {
            let mut cells = Vec::new();
            let mut buf = Vec::new();
            ScenarioRunner::with_threads(threads).run_fold(
                spec.scenarios()
                    .map(|s| s.expect("campaign scenarios build")),
                (),
                |(), idx, result| {
                    buf.push(result.expect("campaign scenarios simulate"));
                    if (idx + 1) % rpc == 0 {
                        cells.push(std::mem::take(&mut buf));
                    }
                },
            );
            cells
        };
        assert_eq!(folded.len(), manual_cells.len());
        for (c, (fold_cell, manual_cell)) in folded.iter().zip(&manual_cells).enumerate() {
            for (f, m) in fold_cell.iter().zip(manual_cell) {
                assert_bit_identical(f, m, &format!("threads={threads} cell={c}"));
            }
        }
    }

    // And the per-cell Summary aggregates of run_campaign are exactly the
    // summaries of the manual per-cell samples.
    let result = run_campaign(&spec, &ScenarioRunner::with_threads(5)).unwrap();
    for (cell, manual) in result.cells.iter().zip(&manual_cells) {
        let effs: Vec<f64> = manual.iter().map(|o| o.report.sys_efficiency).collect();
        let reference = Summary::from_slice(&effs).unwrap();
        assert_eq!(cell.runs, rpc);
        assert_eq!(cell.sys_efficiency.mean.to_bits(), reference.mean.to_bits());
        assert_eq!(cell.sys_efficiency.std.to_bits(), reference.std.to_bits());
        assert_eq!(
            cell.sys_efficiency.median.to_bits(),
            reference.median.to_bits()
        );
    }
}
