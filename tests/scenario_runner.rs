//! Integration coverage for the `ScenarioRunner` batch layer: the
//! parallel executor must be a pure, deterministic fan-out of the
//! sequential engine — bit-identical outcomes, input-ordered, invariant
//! under the worker-thread count.

use iosched_baselines::native_platform;
use iosched_bench::runner::ScenarioRunner;
use iosched_bench::scenario::{PolicySpec, Scenario};
use iosched_model::Platform;
use iosched_sim::{simulate, SimConfig, SimOutcome};
use iosched_workload::congestion::congested_moment;
use iosched_workload::MixConfig;

/// A mixed 20-scenario batch: two platforms, five policies, congested
/// moments and Fig. 6 mixes, with and without burst buffers.
fn mixed_batch() -> Vec<Scenario> {
    let vesta = Platform::vesta();
    let intrepid = Platform::intrepid();
    let native_vesta = native_platform(vesta.clone());
    let mut scenarios = Vec::new();
    for seed in 0..5u64 {
        let apps = congested_moment(&vesta, seed);
        for policy in ["maxsyseff", "mindilation"] {
            scenarios.push(Scenario::new(
                format!("congested/{policy}/{seed}"),
                vesta.clone(),
                apps.clone(),
                PolicySpec::parse(policy).unwrap(),
            ));
        }
    }
    for seed in 0..3u64 {
        let apps = MixConfig::fig6a().generate(&intrepid, seed);
        for policy in ["roundrobin", "priority-maxsyseff"] {
            scenarios.push(Scenario::new(
                format!("mix-a/{policy}/{seed}"),
                intrepid.clone(),
                apps.clone(),
                PolicySpec::parse(policy).unwrap(),
            ));
        }
    }
    for seed in 0..3u64 {
        scenarios.push(
            Scenario::new(
                format!("native/fairshare/{seed}"),
                native_vesta.clone(),
                congested_moment(&native_vesta, seed),
                PolicySpec::parse("fairshare").unwrap(),
            )
            .with_config(SimConfig::with_burst_buffer()),
        );
    }
    scenarios.push(Scenario::new(
        "congested/fcfs/9",
        vesta.clone(),
        congested_moment(&vesta, 9),
        PolicySpec::parse("fcfs").unwrap(),
    ));
    assert_eq!(scenarios.len(), 20);
    scenarios
}

/// Bit-level equality of two outcomes (floats compared through their
/// bit patterns: not approximately equal — *identical*).
fn assert_bit_identical(a: &SimOutcome, b: &SimOutcome, label: &str) {
    assert_eq!(a.events, b.events, "{label}: event counts differ");
    assert_eq!(
        a.end_time.get().to_bits(),
        b.end_time.get().to_bits(),
        "{label}: end times differ"
    );
    assert_eq!(
        a.report.sys_efficiency.to_bits(),
        b.report.sys_efficiency.to_bits(),
        "{label}: SysEfficiency differs"
    );
    assert_eq!(
        a.report.dilation.to_bits(),
        b.report.dilation.to_bits(),
        "{label}: Dilation differs"
    );
    assert_eq!(
        a.report.upper_limit.to_bits(),
        b.report.upper_limit.to_bits(),
        "{label}: upper limit differs"
    );
    assert_eq!(a.report.per_app.len(), b.report.per_app.len());
    for (x, y) in a.report.per_app.iter().zip(&b.report.per_app) {
        assert_eq!(x.id, y.id, "{label}: app order differs");
        assert_eq!(x.finish.get().to_bits(), y.finish.get().to_bits());
        assert_eq!(x.rho.to_bits(), y.rho.to_bits());
        assert_eq!(x.rho_tilde.to_bits(), y.rho_tilde.to_bits());
    }
    assert_eq!(a.per_app_bytes.len(), b.per_app_bytes.len());
    for ((ia, ba), (ib, bb)) in a.per_app_bytes.iter().zip(&b.per_app_bytes) {
        assert_eq!(ia, ib);
        assert_eq!(
            ba.get().to_bits(),
            bb.get().to_bits(),
            "{label}: bytes differ"
        );
    }
}

#[test]
fn parallel_runner_matches_direct_sequential_simulate() {
    let scenarios = mixed_batch();
    let parallel = ScenarioRunner::with_threads(4).run_all(&scenarios);
    assert_eq!(parallel.len(), scenarios.len());
    for (scenario, result) in scenarios.iter().zip(&parallel) {
        // The reference: a direct, sequential engine invocation.
        let mut policy = scenario.policy.build();
        let direct = simulate(
            &scenario.platform,
            &scenario.apps,
            policy.as_mut(),
            &scenario.config,
        )
        .expect("batch scenarios are valid");
        let batched = result.as_ref().expect("batch scenarios are valid");
        assert_bit_identical(batched, &direct, &scenario.label);
    }
}

#[test]
fn results_are_invariant_under_thread_count() {
    let scenarios = mixed_batch();
    let wide = ScenarioRunner::with_threads(8).run_all(&scenarios);
    let narrow = ScenarioRunner::with_threads(1).run_all(&scenarios);
    for ((scenario, w), n) in scenarios.iter().zip(&wide).zip(&narrow) {
        assert_bit_identical(w.as_ref().unwrap(), n.as_ref().unwrap(), &scenario.label);
    }
}
