//! End-to-end checks of the paper's headline claims, run on fixed seeds
//! across the whole stack (workload generator → policies → simulator →
//! objectives). Each test names the claim it guards.

use iosched_baselines::{native_platform, run_native, NativeConfig};
use iosched_core::heuristics::{MaxSysEff, MinDilation, MinMax, Priority};
use iosched_model::{stats, Platform};
use iosched_sim::{simulate, SimConfig};
use iosched_workload::congestion::{congested_moment, intrepid_cases};
use iosched_workload::sensibility;
use iosched_workload::MixConfig;

const CASES: usize = 10;

fn mean_over_cases<F: FnMut(&[iosched_model::AppSpec]) -> (f64, f64)>(
    platform: &Platform,
    mut f: F,
) -> (f64, f64) {
    let mut effs = Vec::new();
    let mut dils = Vec::new();
    for &seed in intrepid_cases().iter().take(CASES) {
        let apps = congested_moment(platform, seed);
        let (e, d) = f(&apps);
        effs.push(e);
        dils.push(d);
    }
    (stats::mean(&effs), stats::mean(&dils))
}

/// Claim (abstract): "congestion … showing in some cases a decrease in
/// I/O throughput of 67 %".
#[test]
fn claim_congestion_costs_up_to_two_thirds_of_io_throughput() {
    let platform = native_platform(Platform::intrepid());
    let mut worst: f64 = 0.0;
    for &seed in intrepid_cases().iter().take(CASES) {
        let apps = congested_moment(&platform, seed);
        let out = run_native(
            &platform,
            &apps,
            NativeConfig {
                burst_buffers: false,
            },
        )
        .unwrap();
        for o in &out.report.per_app {
            worst = worst.max(o.io_throughput_decrease());
        }
    }
    assert!(
        worst > 0.5,
        "worst-case throughput decrease {worst:.2} below the paper's ~0.67 band"
    );
}

/// Claim (§1): "our global I/O scheduler … can increase the overall
/// system throughput up to 56 %" — we check a sizable improvement of
/// MaxSysEff over the uncoordinated run without burst buffers.
#[test]
fn claim_global_scheduler_increases_system_throughput() {
    let platform = native_platform(Platform::intrepid());
    let (ours, _) = mean_over_cases(&platform, |apps| {
        let out = simulate(&platform, apps, &mut MaxSysEff, &SimConfig::default()).unwrap();
        (out.report.sys_efficiency, out.report.dilation)
    });
    let (native, _) = mean_over_cases(&platform, |apps| {
        let out = run_native(
            &platform,
            apps,
            NativeConfig {
                burst_buffers: false,
            },
        )
        .unwrap();
        (out.report.sys_efficiency, out.report.dilation)
    });
    let gain = ours / native - 1.0;
    assert!(
        gain > 0.10,
        "MaxSysEff should clearly beat uncoordinated access: gain {gain:.2}"
    );
}

/// Claim (§4.4, Tables 1–2): "without burst-buffers, our heuristics have
/// comparable results with those of Intrepid or Mira with burst buffers".
#[test]
fn claim_heuristics_without_bb_match_native_with_bb() {
    for base in [Platform::intrepid(), Platform::mira()] {
        let platform = native_platform(base);
        let (ours, ours_dil) = mean_over_cases(&platform, |apps| {
            let out = simulate(&platform, apps, &mut MaxSysEff, &SimConfig::default()).unwrap();
            (out.report.sys_efficiency, out.report.dilation)
        });
        let (native, native_dil) = mean_over_cases(&platform, |apps| {
            let out = run_native(&platform, apps, NativeConfig::default()).unwrap();
            (out.report.sys_efficiency, out.report.dilation)
        });
        assert!(
            ours >= native - 0.01,
            "{}: MaxSysEff w/o BB {ours:.3} vs native w/ BB {native:.3}",
            platform.name
        );
        // And MinDilation improves fairness over the native run.
        let (_, md_dil) = mean_over_cases(&platform, |apps| {
            let out = simulate(&platform, apps, &mut MinDilation, &SimConfig::default()).unwrap();
            (out.report.sys_efficiency, out.report.dilation)
        });
        assert!(
            md_dil <= native_dil + 0.05,
            "{}: MinDilation dilation {md_dil:.2} vs native {native_dil:.2}",
            platform.name
        );
        let _ = ours_dil;
    }
}

/// Claim (§4.2/Tables): MinDilation and MaxSysEff are complementary —
/// each wins its own objective — and MinMax-γ interpolates monotonically.
#[test]
fn claim_heuristics_are_complementary_and_minmax_interpolates() {
    let platform = native_platform(Platform::intrepid());
    let run_with = |gamma: Option<f64>| {
        mean_over_cases(&platform, |apps| {
            let report = match gamma {
                None => unreachable!(),
                Some(g) => {
                    let mut p = MinMax::new(g);
                    simulate(&platform, apps, &mut p, &SimConfig::default())
                        .unwrap()
                        .report
                }
            };
            (report.sys_efficiency, report.dilation)
        })
    };
    // γ = 0 ≡ MaxSysEff … γ = 1 ≡ MinDilation.
    let gammas = [0.0, 0.25, 0.5, 0.75, 1.0];
    let results: Vec<(f64, f64)> = gammas.iter().map(|&g| run_with(Some(g))).collect();
    // SysEfficiency decreases (within noise) as γ grows…
    assert!(
        results[0].0 >= results[4].0 - 0.01,
        "syseff endpoints: {:?}",
        results
    );
    // …and Dilation decreases as γ grows.
    assert!(
        results[4].1 <= results[0].1 + 0.05,
        "dilation endpoints: {:?}",
        results
    );
}

/// Claim (§4.2): the Priority variants are "most of the time, less
/// efficient than the original versions", but the difference is small.
#[test]
fn claim_priority_costs_a_little() {
    let platform = native_platform(Platform::intrepid());
    let (plain, _) = mean_over_cases(&platform, |apps| {
        let out = simulate(&platform, apps, &mut MaxSysEff, &SimConfig::default()).unwrap();
        (out.report.sys_efficiency, out.report.dilation)
    });
    let (prio, _) = mean_over_cases(&platform, |apps| {
        let mut p = Priority::new(MaxSysEff);
        let out = simulate(&platform, apps, &mut p, &SimConfig::default()).unwrap();
        (out.report.sys_efficiency, out.report.dilation)
    });
    assert!(
        prio <= plain + 0.005,
        "priority ({prio:.3}) should not beat plain ({plain:.3})"
    );
    assert!(
        prio >= plain - 0.15,
        "priority cost implausibly high: {prio:.3} vs {plain:.3}"
    );
}

/// Claim (§4.3, Fig. 7): sensibility up to 30 % "has almost no impact".
#[test]
fn claim_sensibility_has_almost_no_impact() {
    let platform = Platform::intrepid();
    let mix = MixConfig::fig6b();
    let mut base_eff = Vec::new();
    let mut pert_eff = Vec::new();
    for seed in 0..6u64 {
        let periodic = mix.generate(&platform, seed);
        let perturbed = sensibility::perturb(&periodic, 0.30, 0.30, seed ^ 99);
        let a = simulate(
            &platform,
            &periodic,
            &mut MinDilation,
            &SimConfig::default(),
        )
        .unwrap();
        let b = simulate(
            &platform,
            &perturbed,
            &mut MinDilation,
            &SimConfig::default(),
        )
        .unwrap();
        base_eff.push(a.report.sys_efficiency);
        pert_eff.push(b.report.sys_efficiency);
    }
    let drift = (stats::mean(&base_eff) - stats::mean(&pert_eff)).abs();
    assert!(
        drift < 0.05,
        "30 % sensibility moved mean SysEfficiency by {drift:.3}"
    );
}

/// Claim (Fig. 16): MaxSysEff sacrifices small applications for big ones;
/// MinDilation keeps the worst-off application better off.
#[test]
fn claim_fig16_fairness_profile() {
    let platform = native_platform(Platform::vesta());
    // 512/256/256/32-shaped scenario in the fluid simulator.
    let apps: Vec<iosched_model::AppSpec> = [512u64, 256, 256, 32]
        .iter()
        .enumerate()
        .map(|(i, &nodes)| {
            iosched_model::AppSpec::periodic(
                i,
                iosched_model::Time::ZERO,
                nodes,
                iosched_model::Time::secs(20.0),
                platform.app_max_bw(nodes) * iosched_model::Time::secs(8.0),
                6,
            )
        })
        .collect();
    let ms = simulate(&platform, &apps, &mut MaxSysEff, &SimConfig::default()).unwrap();
    let md = simulate(&platform, &apps, &mut MinDilation, &SimConfig::default()).unwrap();
    let dil = |r: &iosched_model::ObjectiveReport, i: usize| r.per_app[i].dilation();
    // Under MaxSysEff the 32-node app fares worst.
    let worst_ms = (0..4).max_by(|&a, &b| dil(&ms.report, a).total_cmp(&dil(&ms.report, b)));
    assert_eq!(
        worst_ms,
        Some(3),
        "MaxSysEff should sacrifice the 32-node app"
    );
    // MinDilation's max dilation beats MaxSysEff's.
    assert!(
        md.report.dilation <= ms.report.dilation + 1e-9,
        "MinDilation {} vs MaxSysEff {}",
        md.report.dilation,
        ms.report.dilation
    );
}
