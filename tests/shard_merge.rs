//! Property: any partition of a campaign's seed blocks, computed
//! independently per part (as shard processes would), JSONL-roundtripped
//! through the partial-file line format and reduced with
//! [`merge_records`], is **bit-identical** to the single-process
//! [`run_campaign`] — means, stds, quantile reservoirs and all.
//!
//! The canonical merge order is pinned by `merge_records`: ascending
//! global block index replayed through the same `CellFold` the live run
//! uses, so there is exactly one reduction order and it is the one the
//! single-process runner performs.

use hpc_io_sched::core::heuristics::{BasePolicy, PolicyKind};
use iosched_bench::campaign::{run_campaign, CampaignSpec, PlatformSpec};
use iosched_bench::runner::ScenarioRunner;
use iosched_bench::shard::{
    block_records, merge_dir, merge_records, spec_hash, BlockRecord, ShardLine,
};
use iosched_bench::PolicySpec;
use iosched_workload::WorkloadSpec;
use proptest::prelude::*;
use std::path::Path;

/// A small two-policy campaign: 1 platform x `workload_seeds` congested
/// moments x (fairshare, maxsyseff) x `seeds`. Congested-moment
/// scenarios are the cheapest seeded workload the generator offers, so
/// the property stays fast on one core.
fn campaign(workload_seeds: &[u64], seeds: &[u64]) -> CampaignSpec {
    CampaignSpec {
        name: "prop-shard".into(),
        platforms: vec![PlatformSpec::Preset("vesta".into())],
        workloads: workload_seeds
            .iter()
            .map(|&seed| WorkloadSpec::Congestion { seed })
            .collect(),
        policies: vec![
            PolicySpec::Kind(PolicyKind::plain(BasePolicy::MaxSysEff)),
            PolicySpec::FairShare,
        ],
        seeds: seeds.to_vec(),
        config: None,
        threads: Some(1),
    }
}

/// Random spec shape plus a random assignment of every seed block to
/// one of `parts` parts (parts may end up empty — a shard whose stride
/// never fires is legal too).
fn spec_and_partition() -> impl Strategy<Value = (CampaignSpec, Vec<Vec<usize>>)> {
    (
        prop::collection::vec(0u64..50, 1..3), // congestion workload seeds
        prop::collection::vec(1u64..40, 0..4), // campaign seed axis (may be empty)
        1usize..4,                             // number of parts
    )
        .prop_flat_map(|(wseeds, seeds, parts)| {
            let spec = campaign(&wseeds, &seeds);
            let total = spec.block_count();
            (
                Just(spec),
                prop::collection::vec(0..parts, total),
                Just(parts),
            )
                .prop_map(|(spec, owner, parts)| {
                    let mut partition = vec![Vec::new(); parts];
                    for (block, part) in owner.iter().enumerate() {
                        partition[*part].push(block);
                    }
                    (spec, partition)
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole's correctness contract, satellite 1 of the PR:
    /// random partitions merged == one-process run, bit for bit.
    #[test]
    fn any_partition_merges_bit_identical_to_single_process(
        (spec, partition) in spec_and_partition()
    ) {
        let runner = ScenarioRunner::with_threads(1);
        let whole = run_campaign(&spec, &runner).expect("single-process run");

        // Each part computed independently, as its own "process".
        let mut records = Vec::new();
        for (pass, blocks) in partition.iter().enumerate() {
            let part = block_records(&spec, &runner, blocks, pass)
                .expect("partition part computes");
            // Roundtrip every record through the partial-file JSONL
            // line format — merge must survive the on-disk encoding.
            for record in part {
                let line = serde_json::to_string(&ShardLine::Block(record))
                    .expect("block line serializes");
                match serde_json::from_str::<ShardLine>(&line) {
                    Ok(ShardLine::Block(back)) => records.push(back),
                    other => panic!("block line did not roundtrip: {other:?}"),
                }
            }
        }

        // Merge order must not matter: scramble the record order before
        // reduction (merge re-sorts by global block index).
        records.reverse();
        let merged = merge_records(&spec, records).expect("merge");
        prop_assert_eq!(&merged, &whole);
        // PartialEq on Summary covers the quantile reservoirs, but pin
        // the headline statistic bitwise too, for the avoidance of doubt.
        for (m, w) in merged.cells.iter().zip(&whole.cells) {
            prop_assert_eq!(
                m.sys_efficiency.mean.to_bits(),
                w.sys_efficiency.mean.to_bits()
            );
            prop_assert_eq!(&m.sys_efficiency.reservoir, &w.sys_efficiency.reservoir);
        }
    }
}

/// Duplicated block records (a torn line recomputed by a later pass)
/// must not change the reduction: first occurrence wins and results are
/// deterministic anyway.
#[test]
fn duplicate_blocks_do_not_change_the_merge() {
    let spec = campaign(&[3], &[1, 2]);
    let runner = ScenarioRunner::with_threads(1);
    let whole = run_campaign(&spec, &runner).expect("run");
    let all: Vec<usize> = (0..spec.block_count()).collect();
    let records = block_records(&spec, &runner, &all, 0).expect("records");
    let mut doubled = records.clone();
    doubled.extend(records.iter().cloned().map(|mut r| {
        r.pass = 1;
        r
    }));
    let merged = merge_records(&spec, doubled).expect("merge tolerates duplicates");
    assert_eq!(merged, whole);
}

/// Missing coverage must refuse loudly, never produce a silently
/// partial campaign result.
#[test]
fn incomplete_coverage_refuses() {
    let spec = campaign(&[3], &[1, 2]);
    let runner = ScenarioRunner::with_threads(1);
    let all: Vec<usize> = (0..spec.block_count()).collect();
    let mut records = block_records(&spec, &runner, &all, 0).expect("records");
    records.remove(1);
    let err = merge_records(&spec, records).unwrap_err();
    assert!(
        err.contains("incomplete partials"),
        "unexpected error: {err}"
    );
}

/// The spec hash excludes execution knobs: the same campaign resumed
/// with a different `threads` override is still the same campaign.
#[test]
fn spec_hash_ignores_thread_override() {
    let a = campaign(&[1], &[1]);
    let mut b = a.clone();
    b.threads = Some(8);
    let mut c = a.clone();
    c.threads = None;
    assert_eq!(spec_hash(&a), spec_hash(&b));
    assert_eq!(spec_hash(&a), spec_hash(&c));
    // ...but a change to a science axis is a different campaign.
    let mut d = a.clone();
    d.seeds = vec![2];
    assert_ne!(spec_hash(&a), spec_hash(&d));
}

/// Records claiming a different policy arity than the spec are refused
/// (a partial from a drifted spec must not silently merge).
#[test]
fn wrong_policy_arity_refuses() {
    let spec = campaign(&[3], &[1]);
    let runner = ScenarioRunner::with_threads(1);
    let all: Vec<usize> = (0..spec.block_count()).collect();
    let mut records = block_records(&spec, &runner, &all, 0).expect("records");
    records[0].runs.pop();
    let err = merge_records(&spec, records).unwrap_err();
    assert!(err.contains("policies"), "unexpected error: {err}");
}

/// The checked-in fixture partials (`examples/partials/`) merge to the
/// same result as re-running the campaign they embed — the on-disk
/// format written by today's binary stays readable, and the reducer's
/// bit-identity contract holds across the file boundary. Regenerate
/// with `iosched shard` on the embedded spec if the format ever
/// changes (see README "Sharded campaigns").
#[test]
fn checked_in_fixture_partials_merge_bit_identical() {
    let dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/partials"));
    let merged = merge_dir(dir).expect("fixture partials merge");
    assert_eq!(merged.files, 2);
    assert_eq!(merged.blocks, merged.spec.block_count());
    assert_eq!(merged.footers.len(), 2, "fixtures carry clean-exit footers");
    let rerun =
        run_campaign(&merged.spec, &ScenarioRunner::with_threads(1)).expect("embedded spec runs");
    assert_eq!(merged.result, rerun);
}

/// Manifest and footer lines roundtrip through the JSONL encoding too
/// (the fixture-merge CI step depends on parsing checked-in files).
#[test]
fn manifest_and_footer_lines_roundtrip() {
    let spec = campaign(&[1], &[1, 2]);
    let manifest = iosched_bench::shard::ShardManifest {
        index: 1,
        of: 2,
        pass: 3,
        blocks: spec.block_count(),
        spec_hash: spec_hash(&spec),
        spec: spec.clone(),
    };
    let footer = iosched_bench::shard::ShardFooter {
        index: 1,
        pass: 3,
        blocks_done: 4,
        wall_ms: 123,
        cpu_ms: Some(77),
        peak_rss_kib: None,
        block_time_ns: Some(iosched_obs::HistogramSnapshot {
            count: 4,
            sum: 4_000_000,
            min: 800_000,
            max: 1_400_000,
            buckets: vec![(20, 3), (21, 1)],
        }),
    };
    for line in [
        ShardLine::Manifest(manifest),
        ShardLine::Done(footer),
        ShardLine::Block(BlockRecord {
            block: 0,
            pass: 0,
            runs: vec![],
        }),
    ] {
        let text = serde_json::to_string(&line).expect("serializes");
        let back: ShardLine = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, line);
    }
}
