//! Property-based invariants of the fluid simulator, checked across
//! random scenarios and every policy of the paper (§2.1's "rules of the
//! game": never exceed `b` per processor, never exceed `B` in aggregate,
//! transfer exactly `vol_io` per instance).

use iosched_baselines::{FairShare, Fcfs};
use iosched_core::heuristics::PolicyKind;
use iosched_core::policy::OnlinePolicy;
use iosched_model::{AppId, AppSpec, Bw, Bytes, Platform, Time};
use iosched_sim::{simulate, SimConfig};
use proptest::prelude::*;

/// Random platform: 200–4,000 nodes, b in [0.02, 0.2] GiB/s, B sized so
/// that 5–50 % of the machine saturates it.
fn arb_platform() -> impl Strategy<Value = Platform> {
    (200u64..4_000, 0.02f64..0.2, 0.05f64..0.5).prop_map(|(procs, b, sat_frac)| {
        let total = b * procs as f64 * sat_frac;
        Platform::new(
            "prop",
            procs,
            Bw::gib_per_sec(b),
            Bw::gib_per_sec(total.max(0.1)),
        )
    })
}

/// Random periodic application sized for `max_procs`.
fn arb_app(max_procs: u64) -> impl Strategy<Value = (u64, f64, f64, usize, f64)> {
    (
        1u64..=max_procs,
        1.0f64..300.0, // work seconds
        0.1f64..200.0, // volume GiB
        1usize..6,     // instances
        0.0f64..100.0, // release
    )
}

fn scenario() -> impl Strategy<Value = (Platform, Vec<AppSpec>)> {
    arb_platform().prop_flat_map(|platform| {
        let per_app = platform.procs / 8;
        let apps = prop::collection::vec(arb_app(per_app.max(1)), 1..8);
        (Just(platform), apps).prop_map(|(platform, raw)| {
            let apps = raw
                .into_iter()
                .enumerate()
                .map(|(i, (procs, w, vol, n, rel))| {
                    AppSpec::periodic(i, Time::secs(rel), procs, Time::secs(w), Bytes::gib(vol), n)
                })
                .collect();
            (platform, apps)
        })
    })
}

fn all_policies() -> Vec<Box<dyn OnlinePolicy>> {
    let mut v = iosched_core::standard_policies();
    v.push(Box::new(FairShare));
    v.push(Box::new(Fcfs));
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every policy transfers exactly the requested volume for every
    /// application, and the recorded trace violates no capacity rule.
    #[test]
    fn conservation_and_capacity((platform, apps) in scenario()) {
        for mut policy in all_policies() {
            let out = simulate(&platform, &apps, policy.as_mut(), &SimConfig::traced())
                .expect("random scenarios are valid");
            // Conservation: delivered bytes == Σ vol per app.
            for app in &apps {
                let delivered = out.bytes_of(app.id()).expect("every app reported");
                let expected = app.total_vol();
                prop_assert!(
                    (delivered.get() - expected.get()).abs()
                        <= 1e-6 * expected.get().max(1.0),
                    "{}: {} delivered vs {} requested under {}",
                    app.id(), delivered, expected, policy.name()
                );
            }
            // Capacity rules, replayed from the trace.
            let trace = out.trace.as_ref().expect("trace requested");
            let procs_of = |id: AppId| apps.iter().find(|a| a.id() == id).map(AppSpec::procs);
            trace.validate(&platform, &procs_of).map_err(|e| {
                TestCaseError::fail(format!("{}: {e}", policy.name()))
            })?;
        }
    }

    /// ρ̃ ≤ ρ and dilation ≥ 1 for every application under every policy;
    /// the report's SysEfficiency never exceeds its upper limit.
    #[test]
    fn efficiency_bounds((platform, apps) in scenario()) {
        for mut policy in all_policies() {
            let out = simulate(&platform, &apps, policy.as_mut(), &SimConfig::default())
                .expect("valid scenario");
            for o in &out.report.per_app {
                prop_assert!(o.rho_tilde <= o.rho + 1e-9,
                    "{}: rho_tilde {} > rho {}", o.id, o.rho_tilde, o.rho);
                prop_assert!(o.dilation() >= 1.0);
                prop_assert!(o.finish.approx_ge(o.release));
            }
            prop_assert!(
                out.report.sys_efficiency <= out.report.upper_limit + 1e-9
            );
        }
    }

    /// A single application always runs at dedicated speed: completion at
    /// exactly `r + Σ(w + vol/min(β·b, B))`, dilation exactly 1.
    #[test]
    fn dedicated_mode_is_exact(
        (procs, w, vol, n, rel) in arb_app(500),
    ) {
        let platform = Platform::new("ded", 4_000, Bw::gib_per_sec(0.05), Bw::gib_per_sec(10.0));
        let app = AppSpec::periodic(0, Time::secs(rel), procs, Time::secs(w),
                                    Bytes::gib(vol), n);
        let expected = Time::secs(rel) + app.dedicated_span(&platform);
        for mut policy in all_policies() {
            let out = simulate(
                &platform,
                std::slice::from_ref(&app),
                policy.as_mut(),
                &SimConfig::default(),
            )
            .expect("valid scenario");
            let o = out.report.app(AppId(0)).unwrap();
            prop_assert!(
                o.finish.approx_eq(expected),
                "{}: finish {} vs expected {}", policy.name(), o.finish, expected
            );
            prop_assert!((out.report.dilation - 1.0).abs() < 1e-6);
        }
    }

    /// Determinism: the same scenario under the same policy produces the
    /// same report.
    #[test]
    fn simulation_is_deterministic((platform, apps) in scenario()) {
        for kind in PolicyKind::fig6_roster() {
            let mut p1 = kind.build();
            let mut p2 = kind.build();
            let a = simulate(&platform, &apps, p1.as_mut(), &SimConfig::default()).unwrap();
            let b = simulate(&platform, &apps, p2.as_mut(), &SimConfig::default()).unwrap();
            prop_assert_eq!(a.events, b.events);
            prop_assert!((a.report.sys_efficiency - b.report.sys_efficiency).abs() < 1e-12);
            prop_assert!(
                a.report.dilation == b.report.dilation
                    || (a.report.dilation - b.report.dilation).abs() < 1e-12
            );
        }
    }
}

/// Burst-buffer runs conserve volume too, and never make things worse
/// than the plain run for the same fair-share policy.
#[test]
fn burst_buffer_conservation_fixed_cases() {
    let platform = Platform::new("bb", 4_000, Bw::gib_per_sec(0.05), Bw::gib_per_sec(10.0))
        .with_default_burst_buffer();
    for seed in 0..5u64 {
        let apps: Vec<AppSpec> = (0..4)
            .map(|i| {
                AppSpec::periodic(
                    i,
                    Time::secs(i as f64 * 7.0 + seed as f64),
                    500,
                    Time::secs(20.0 + seed as f64 * 3.0),
                    Bytes::gib(100.0 + 20.0 * i as f64),
                    4,
                )
            })
            .collect();
        let out = simulate(
            &platform,
            &apps,
            &mut FairShare,
            &SimConfig::with_burst_buffer(),
        )
        .unwrap();
        for app in &apps {
            let delivered = out.bytes_of(app.id()).unwrap();
            assert!(
                (delivered.get() - app.total_vol().get()).abs() <= 1e-6 * app.total_vol().get(),
                "seed {seed} {}: {delivered} vs {}",
                app.id(),
                app.total_vol()
            );
        }
    }
}
