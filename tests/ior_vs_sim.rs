//! §5's purpose was to *validate the simulator* against a real
//! implementation: "We validate our simulation model and show that […]
//! the results are much better when using our implementation than current
//! Vesta schedulers." Here we close the same loop in-repo: the
//! real-thread IOR harness and the fluid simulator must agree on the same
//! scenario within protocol-overhead tolerance.

use iosched_core::heuristics::{MaxSysEff, MinDilation, RoundRobin};
use iosched_core::policy::OnlinePolicy;
use iosched_ior::{run_ior, IorConfig};
use iosched_model::Platform;
use iosched_sim::{simulate, SimConfig};
use iosched_workload::ior_profile::{scenario_apps, IorParams, VestaScenario};

fn agreement_case(nodes: &[u64], policy_pair: (&mut dyn OnlinePolicy, &mut dyn OnlinePolicy)) {
    let platform = Platform::vesta();
    let scenario = VestaScenario::new(nodes);
    let params = IorParams {
        iterations: 4,
        ..IorParams::default()
    };
    let apps = scenario_apps(&scenario, &platform, params, 5);

    let sim =
        simulate(&platform, &apps, policy_pair.0, &SimConfig::default()).expect("valid scenario");

    let mut cfg = IorConfig::new(platform.clone(), apps);
    cfg.speedup = 1_000.0;
    let ior = run_ior(&cfg, policy_pair.1).expect("valid scenario");

    // Per-application achieved efficiency must agree within the protocol
    // overhead band the paper measures (≤ ~5 %) plus thread-timing noise
    // (the whole workspace test suite may be loading every core while
    // these sleeps run, so the band is generous: 25 % relative or 0.05
    // absolute, whichever is friendlier).
    for (s, r) in sim.report.per_app.iter().zip(ior.report.per_app.iter()) {
        assert_eq!(s.id, r.id);
        let abs = (s.rho_tilde - r.rho_tilde).abs();
        let rel = abs / s.rho_tilde.max(1e-9);
        assert!(
            rel < 0.25 || abs < 0.05,
            "scenario {}: {} fluid ρ̃ {:.4} vs threaded ρ̃ {:.4} ({:.1} % apart)",
            scenario.name,
            s.id,
            s.rho_tilde,
            r.rho_tilde,
            rel * 100.0
        );
    }
    let eff_gap = (sim.report.sys_efficiency - ior.report.sys_efficiency).abs();
    assert!(
        eff_gap < 0.15,
        "scenario {}: SysEfficiency gap {eff_gap:.3} between fluid and threaded runs",
        scenario.name
    );
}

#[test]
fn single_app_agrees() {
    agreement_case(&[256], (&mut RoundRobin, &mut RoundRobin));
}

#[test]
fn two_apps_agree_under_mindilation() {
    agreement_case(&[256, 512], (&mut MinDilation, &mut MinDilation));
}

#[test]
fn four_apps_agree_under_maxsyseff() {
    agreement_case(&[512, 256, 256, 32], (&mut MaxSysEff, &mut MaxSysEff));
}

/// The threaded run's dilation ordering matches the fluid prediction:
/// MinDilation's max dilation ≤ MaxSysEff's on the uneven scenario.
#[test]
fn threaded_run_preserves_the_fairness_ordering() {
    let platform = Platform::vesta();
    let scenario = VestaScenario::new(&[512, 256, 256, 32]);
    let params = IorParams {
        iterations: 5,
        ..IorParams::default()
    };
    let apps = scenario_apps(&scenario, &platform, params, 11);

    let mut cfg = IorConfig::new(platform.clone(), apps);
    cfg.speedup = 1_000.0;
    let md = run_ior(&cfg, &mut MinDilation).unwrap();
    let ms = run_ior(&cfg, &mut MaxSysEff).unwrap();
    assert!(
        md.report.dilation <= ms.report.dilation + 0.4,
        "threaded MinDilation {:.2} vs MaxSysEff {:.2}",
        md.report.dilation,
        ms.report.dilation
    );
}
