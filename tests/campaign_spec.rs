//! The campaign layer's contract with the checked-in example spec:
//! `examples/campaign_fig6.json` *is* the ported Fig. 6 experiment, and
//! running a (seed-truncated) version of it through the generic campaign
//! runner produces bit-identical per-cell summaries to the `fig06`
//! experiment module — the same code path `iosched campaign` drives.

use iosched_bench::campaign::{run_campaign, CampaignSpec};
use iosched_bench::experiments::fig06;
use iosched_bench::runner::ScenarioRunner;

fn example_json() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/campaign_fig6.json");
    std::fs::read_to_string(path).expect("examples/campaign_fig6.json is checked in")
}

#[test]
fn example_file_is_exactly_the_fig6_campaign() {
    let parsed = CampaignSpec::from_json(&example_json()).expect("example parses");
    let reference = fig06::campaign(200);
    assert_eq!(
        parsed, reference,
        "examples/campaign_fig6.json drifted; \
        regenerate with `cargo run --release --example export_campaigns`"
    );
    // The paper's Fig. 6 shape: 3 mixes x 8 policies x 200 seeds.
    assert_eq!(parsed.workloads.len(), 3);
    assert_eq!(parsed.policies.len(), 8);
    assert_eq!(parsed.seeds.len(), 200);
    assert_eq!(parsed.total_runs(), 4800);
}

#[test]
fn campaign_file_and_fig06_port_agree_bit_for_bit() {
    // Truncate the seed axis so the test stays fast; the expansion logic
    // and aggregation path are identical to the full 200-seed run.
    let runs = 6;
    let spec = CampaignSpec {
        seeds: (0..runs as u64).collect(),
        ..CampaignSpec::from_json(&example_json()).expect("example parses")
    };
    let from_file = run_campaign(&spec, &ScenarioRunner::new()).expect("campaign runs");
    let from_port = fig06::run(runs);
    assert_eq!(from_file.cells.len(), from_port.len());
    for (cell, row) in from_file.cells.iter().zip(&from_port) {
        assert_eq!(cell.policy, row.policy);
        assert_eq!(
            cell.sys_efficiency.mean.to_bits(),
            row.sys_efficiency.to_bits(),
            "SysEfficiency diverged for {}/{}",
            cell.workload,
            cell.policy
        );
        assert_eq!(
            cell.dilation.mean.to_bits(),
            row.dilation.to_bits(),
            "Dilation diverged for {}/{}",
            cell.workload,
            cell.policy
        );
        assert_eq!(
            cell.upper_limit.mean.to_bits(),
            row.upper_limit.to_bits(),
            "upper limit diverged for {}/{}",
            cell.workload,
            cell.policy
        );
    }
}
