//! The campaign layer's contract with the checked-in example specs:
//! `examples/campaign_fig6.json` *is* the ported Fig. 6 experiment and
//! `examples/campaign_fig4.json` *is* the ported Fig. 4 periodic
//! experiment; running them through the generic campaign runner produces
//! bit-identical numbers to the experiment modules — and, for the
//! offline `periodic:*` policies, to the pre-registry hand-rolled
//! pipeline (explicit `PeriodSearch` + `TimetablePolicy` + `simulate`) —
//! on the same code path `iosched campaign` drives.

use hpc_io_sched::core::periodic::{
    InsertionHeuristic, PeriodSearch, PeriodicAppSpec, PeriodicObjective, TimetablePolicy,
};
use hpc_io_sched::model::Platform;
use hpc_io_sched::sim::{replay_apps, simulate, SimConfig};
use hpc_io_sched::workload::congestion::congested_moment;
use iosched_bench::campaign::{run_campaign, CampaignSpec};
use iosched_bench::experiments::{ablations, control, fig04, fig06, load_sweep};
use iosched_bench::runner::ScenarioRunner;

fn example_json() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/campaign_fig6.json");
    std::fs::read_to_string(path).expect("examples/campaign_fig6.json is checked in")
}

fn fig4_example_json() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/campaign_fig4.json");
    std::fs::read_to_string(path).expect("examples/campaign_fig4.json is checked in")
}

#[test]
fn example_file_is_exactly_the_fig6_campaign() {
    let parsed = CampaignSpec::from_json(&example_json()).expect("example parses");
    let reference = fig06::campaign(200);
    assert_eq!(
        parsed, reference,
        "examples/campaign_fig6.json drifted; \
        regenerate with `cargo run --release --example export_campaigns`"
    );
    // The paper's Fig. 6 shape: 3 mixes x 8 policies x 200 seeds.
    assert_eq!(parsed.workloads.len(), 3);
    assert_eq!(parsed.policies.len(), 8);
    assert_eq!(parsed.seeds.len(), 200);
    assert_eq!(parsed.total_runs(), 4800);
}

#[test]
fn campaign_file_and_fig06_port_agree_bit_for_bit() {
    // Truncate the seed axis so the test stays fast; the expansion logic
    // and aggregation path are identical to the full 200-seed run.
    let runs = 6;
    let spec = CampaignSpec {
        seeds: (0..runs as u64).collect(),
        ..CampaignSpec::from_json(&example_json()).expect("example parses")
    };
    let from_file = run_campaign(&spec, &ScenarioRunner::new()).expect("campaign runs");
    let from_port = fig06::run(runs);
    assert_eq!(from_file.cells.len(), from_port.len());
    for (cell, row) in from_file.cells.iter().zip(&from_port) {
        assert_eq!(cell.policy, row.policy);
        assert_eq!(
            cell.sys_efficiency.mean.to_bits(),
            row.sys_efficiency.to_bits(),
            "SysEfficiency diverged for {}/{}",
            cell.workload,
            cell.policy
        );
        assert_eq!(
            cell.dilation.mean.to_bits(),
            row.dilation.to_bits(),
            "Dilation diverged for {}/{}",
            cell.workload,
            cell.policy
        );
        assert_eq!(
            cell.upper_limit.mean.to_bits(),
            row.upper_limit.to_bits(),
            "upper limit diverged for {}/{}",
            cell.workload,
            cell.policy
        );
    }
}

#[test]
fn fig4_example_file_is_exactly_the_fig04_campaign() {
    let parsed = CampaignSpec::from_json(&fig4_example_json()).expect("example parses");
    let reference = fig04::campaign(fig04::REPLAY_PERIODS);
    assert_eq!(
        parsed, reference,
        "examples/campaign_fig4.json drifted; \
        regenerate with `cargo run --release --example export_campaigns`"
    );
    // One offline policy over the paper's four applications.
    assert_eq!(parsed.policies.len(), 1);
    assert!(parsed.policies[0].is_offline());
    assert_eq!(parsed.policies[0].name(), "periodic:cong:eps=0.02:tmax=1.5");
    assert_eq!(parsed.total_runs(), 1);
}

/// The registry refactor must not move a single bit: the ported Fig. 4
/// campaign (the path `iosched campaign examples/campaign_fig4.json`
/// runs) reproduces the pre-refactor hand-rolled periodic pipeline —
/// explicit `(1+ε)` period search, explicit `TimetablePolicy`, explicit
/// `simulate` — exactly.
#[test]
fn fig04_campaign_matches_the_hand_rolled_pipeline_bit_for_bit() {
    // Hand-rolled (pre-registry) pipeline.
    let platform = fig04::paper_platform();
    let search = PeriodSearch::new(PeriodicObjective::Dilation)
        .with_epsilon(0.02)
        .with_max_factor(1.5);
    let result = search
        .run(
            &platform,
            &fig04::paper_apps(),
            InsertionHeuristic::Congestion,
        )
        .expect("non-empty application set");
    result.schedule.validate(&platform).unwrap();
    let apps = replay_apps(&result.schedule, fig04::REPLAY_PERIODS);
    let mut policy = TimetablePolicy::new(result.schedule.clone());
    let direct = simulate(&platform, &apps, &mut policy, &SimConfig::default()).unwrap();

    // Campaign path, from the checked-in file.
    let spec = CampaignSpec::from_json(&fig4_example_json()).expect("example parses");
    let campaign = run_campaign(&spec, &ScenarioRunner::new()).expect("campaign runs");
    assert_eq!(campaign.cells.len(), 1);
    let cell = &campaign.cells[0];
    assert_eq!(cell.runs, 1);
    assert_eq!(
        cell.sys_efficiency.mean.to_bits(),
        direct.report.sys_efficiency.to_bits(),
        "SysEfficiency diverged: campaign {} vs hand-rolled {}",
        cell.sys_efficiency.mean,
        direct.report.sys_efficiency
    );
    assert_eq!(
        cell.dilation.mean.to_bits(),
        direct.report.dilation.to_bits(),
        "Dilation diverged: campaign {} vs hand-rolled {}",
        cell.dilation.mean,
        direct.report.dilation
    );
    assert_eq!(
        cell.makespan_secs.mean.to_bits(),
        direct.report.makespan().as_secs().to_bits()
    );
    assert_eq!(
        cell.upper_limit.mean.to_bits(),
        direct.report.upper_limit.to_bits()
    );
}

/// Same pin for the ported ε ablation: each `periodic:cong:eps=<ε>` cell
/// equals the hand-rolled search + timetable replay on the same
/// congested moment.
#[test]
fn epsilon_ablation_campaign_matches_the_hand_rolled_sweep_bit_for_bit() {
    let epsilons = [0.5, 0.1];
    let spec = ablations::epsilon_campaign(&epsilons);
    let campaign = run_campaign(&spec, &ScenarioRunner::new()).expect("campaign runs");
    assert_eq!(campaign.cells.len(), epsilons.len());

    let platform = Platform::intrepid();
    let apps = congested_moment(&platform, ablations::EPSILON_CASE_SEED);
    let periodic_specs: Vec<PeriodicAppSpec> = apps
        .iter()
        .map(|a| PeriodicAppSpec::from_app(a).expect("generator emits periodic apps"))
        .collect();
    for (cell, &epsilon) in campaign.cells.iter().zip(&epsilons) {
        let result = PeriodSearch::new(PeriodicObjective::Dilation)
            .with_epsilon(epsilon)
            .run(&platform, &periodic_specs, InsertionHeuristic::Congestion)
            .expect("non-empty application set");
        let mut policy = TimetablePolicy::new(result.schedule);
        let direct = simulate(&platform, &apps, &mut policy, &SimConfig::default()).unwrap();
        assert_eq!(
            cell.dilation.mean.to_bits(),
            direct.report.dilation.to_bits(),
            "eps {epsilon}: campaign dilation {} vs hand-rolled {}",
            cell.dilation.mean,
            direct.report.dilation
        );
        assert_eq!(
            cell.sys_efficiency.mean.to_bits(),
            direct.report.sys_efficiency.to_bits(),
            "eps {epsilon}: campaign SysEfficiency diverged"
        );
    }
}

#[test]
fn control_example_file_is_exactly_the_storm_campaign() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/campaign_control.json"
    );
    let text = std::fs::read_to_string(path).expect("examples/campaign_control.json is checked in");
    let parsed = CampaignSpec::from_json(&text).expect("example parses");
    let reference = control::campaign(control::STORM_SEEDS);
    assert_eq!(
        parsed, reference,
        "examples/campaign_control.json drifted; \
        regenerate with `cargo run --release --example export_campaigns`"
    );
    // The storm shape: the closed-loop pair vs the three open-loop
    // references, telemetry on, spikes in the shared engine config.
    assert_eq!(parsed.policies.len(), 5);
    assert!(parsed.policies.iter().any(|p| p.name() == "control:pi"));
    assert!(parsed.policies.iter().any(|p| p.name() == "fairshare"));
    assert!(parsed.policies.iter().any(|p| p.name() == "periodic:cong"));
    let config = parsed.config.as_ref().expect("shared engine config");
    assert!(config.telemetry);
    assert_eq!(config.external_load, Some(control::spike_load()));
    assert!(
        parsed.seeds.len() >= 3,
        "the acceptance bar needs >= 3 seeds"
    );
}

/// The telemetry tap observes, it never steers: with the summary export
/// on, every existing roster family produces bit-identical objectives to
/// the telemetry-off run — on the same campaign path `iosched campaign`
/// drives.
#[test]
fn telemetry_flag_is_bit_identical_for_the_existing_roster() {
    let base = r#"{
        "name": "telemetry-pin",
        "platforms": ["vesta"],
        "workloads": [{"Congestion": {"seed": 0}}],
        "policies": ["maxsyseff", "mindilation", "fairshare", "fcfs", "periodic:cong"],
        "seeds": [1, 2],
        "config": CONFIG,
        "threads": 2
    }"#;
    let off = CampaignSpec::from_json(&base.replace("CONFIG", "null")).unwrap();
    let on = CampaignSpec::from_json(&base.replace("CONFIG", r#"{"telemetry": true}"#)).unwrap();
    let off = run_campaign(&off, &ScenarioRunner::with_threads(2)).unwrap();
    let on = run_campaign(&on, &ScenarioRunner::with_threads(2)).unwrap();
    assert_eq!(off.cells.len(), on.cells.len());
    for (off_cell, on_cell) in off.cells.iter().zip(&on.cells) {
        assert_eq!(off_cell.policy, on_cell.policy);
        for (o, n, what) in [
            (
                &off_cell.sys_efficiency,
                &on_cell.sys_efficiency,
                "SysEfficiency",
            ),
            (&off_cell.dilation, &on_cell.dilation, "Dilation"),
            (&off_cell.makespan_secs, &on_cell.makespan_secs, "makespan"),
            (&off_cell.upper_limit, &on_cell.upper_limit, "upper limit"),
        ] {
            assert_eq!(
                o.mean.to_bits(),
                n.mean.to_bits(),
                "{what} moved under telemetry for {}",
                off_cell.policy
            );
            assert_eq!(o.std.to_bits(), n.std.to_bits());
            assert_eq!(o.min.to_bits(), n.min.to_bits());
            assert_eq!(o.max.to_bits(), n.max.to_bits());
        }
        // The only difference: the telemetry-on cells carry the
        // utilization aggregate.
        assert!(off_cell.utilization.is_none());
        assert!(on_cell.utilization.is_some());
    }
}

#[test]
fn stream_example_file_is_exactly_the_load_sweep_campaign() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/campaign_stream.json");
    let text = std::fs::read_to_string(path).expect("examples/campaign_stream.json is checked in");
    let parsed = CampaignSpec::from_json(&text).expect("example parses");
    let reference = load_sweep::campaign(load_sweep::SWEEP_SEEDS);
    assert_eq!(
        parsed, reference,
        "examples/campaign_stream.json drifted; \
        regenerate with `cargo run --release --example export_campaigns`"
    );
    // The sweep shape: one stream workload per λ, all open-system, the
    // four-policy saturation roster, the warmup window campaign-wide.
    assert_eq!(parsed.workloads.len(), load_sweep::lambdas().len());
    assert!(parsed.workloads.iter().all(|w| w.is_open()));
    assert_eq!(parsed.policies.len(), 4);
    assert!(parsed.policies.iter().any(|p| p.name() == "fairshare"));
    assert!(parsed.policies.iter().any(|p| p.name() == "control:pi"));
    assert!(parsed
        .policies
        .iter()
        .any(|p| p.name().starts_with("periodic:cong")));
    let config = parsed.config.as_ref().expect("shared engine config");
    assert!(config.warmup.as_secs() > 0.0);
    assert!(config.telemetry);
}

/// The campaign path runs stream cells through the same open-system
/// engine the direct `simulate_open` call uses — bit-identical — and
/// attaches the steady aggregates the saturation curves read.
#[test]
fn stream_campaign_cells_match_direct_open_simulation() {
    let full = load_sweep::campaign(load_sweep::SWEEP_SEEDS);
    let spec = CampaignSpec {
        workloads: vec![full.workloads[0].clone(), full.workloads[1].clone()],
        policies: vec![
            iosched_bench::scenario::PolicySpec::parse("fairshare").unwrap(),
            iosched_bench::scenario::PolicySpec::parse("mindilation").unwrap(),
        ],
        seeds: vec![0, 1],
        ..full
    };
    let result = run_campaign(&spec, &ScenarioRunner::with_threads(2)).expect("sweep runs");
    assert_eq!(result.cells.len(), 4);
    let config = spec.config.clone().unwrap();
    for (cell_idx, cell) in result.cells.iter().enumerate() {
        let queue = cell.queue.as_ref().expect("stream cells aggregate queues");
        let stretch = cell
            .stretch
            .as_ref()
            .expect("stream cells aggregate stretch");
        assert!(queue.mean >= 0.0 && stretch.mean >= 1.0);
        // Recompute the cell's first seed directly.
        let w = cell_idx / spec.policies.len();
        let platform = hpc_io_sched::model::Platform::intrepid();
        let apps = spec.workloads[w]
            .with_seed(0)
            .materialize(&platform)
            .unwrap();
        let mut policy = spec.policies[cell_idx % spec.policies.len()]
            .build(&platform, &apps)
            .unwrap();
        let direct =
            hpc_io_sched::sim::simulate_open(&platform, &apps, policy.as_mut(), &config).unwrap();
        assert_eq!(
            cell.dilation.min.min(cell.dilation.max),
            cell.dilation.min,
            "sanity"
        );
        let direct_queue = direct.steady.unwrap().mean_queue;
        assert!(
            queue.min <= direct_queue + 1e-12 && direct_queue <= queue.max + 1e-12,
            "direct seed-0 queue {direct_queue} outside cell range [{}, {}]",
            queue.min,
            queue.max
        );
        assert_eq!(cell.runs, 2, "every stream cell aggregated both seeds");
    }
}

/// The acceptance scenario for the scenario-aware registry: one campaign
/// JSON sweeping `minmax-0.5`-style online heuristics head-to-head with
/// `periodic:*` offline schedules — the §7-outlook comparison of *Periodic
/// I/O scheduling for super-computers* — through the same runner
/// `iosched campaign` uses.
#[test]
fn one_campaign_sweeps_online_and_offline_policies_head_to_head() {
    let spec = CampaignSpec::from_json(
        r#"{
            "name": "online-vs-periodic",
            "platforms": ["vesta"],
            "workloads": [{"Congestion": {"seed": 0}}],
            "policies": ["minmax-0.5", "priority-maxsyseff", "fairshare", "periodic:cong"],
            "seeds": [1, 3],
            "config": null,
            "threads": 2
        }"#,
    )
    .expect("mixed campaign parses");
    assert_eq!(spec.policies.iter().filter(|p| p.is_offline()).count(), 1);
    let result = run_campaign(&spec, &ScenarioRunner::with_threads(2)).expect("campaign runs");
    assert_eq!(result.cells.len(), 4);
    assert_eq!(result.total_runs, 8);
    let periodic = result
        .cell("congestion", "periodic:cong")
        .expect("offline cell present");
    assert_eq!(periodic.runs, 2);
    assert!(periodic.sys_efficiency.mean > 0.0);
    assert!(periodic.dilation.mean >= 1.0);
    // Cells are keyed by the canonical serde name ("minmax-0.50").
    let online = result
        .cell("congestion", "minmax-0.50")
        .expect("online cell present");
    assert!(online.sys_efficiency.mean > 0.0);
    // Both families aggregated identically: every cell saw both seeds.
    assert!(result.cells.iter().all(|c| c.runs == 2));
}
