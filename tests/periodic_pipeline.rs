//! Cross-crate checks of the §3.2 periodic machinery: schedules built by
//! the insertion heuristics stay valid on random inputs, steady state
//! agrees with the unrolled finite-horizon execution, the fluid engine
//! replaying a timetable agrees with the analytic unrolling, and the
//! Theorem 1 reduction round-trips through the scheduler types.

use iosched_core::periodic::{
    build_schedule, InsertionHeuristic, PeriodSearch, PeriodicAppSpec, PeriodicObjective,
    TimetablePolicy,
};
use iosched_core::three_partition::ThreePartition;
use iosched_model::{Bw, Bytes, Platform, Time};
use iosched_sim::periodic_exec::{replay_apps, unroll_report};
use iosched_sim::{simulate, SimConfig};
use iosched_workload::congestion::congested_moment;
use proptest::prelude::*;

fn arb_periodic_apps() -> impl Strategy<Value = Vec<PeriodicAppSpec>> {
    prop::collection::vec((1u64..400, 1.0f64..120.0, 0.1f64..80.0), 1..7).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (procs, w, vol))| {
                PeriodicAppSpec::new(i, procs, Time::secs(w), Bytes::gib(vol))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both insertion heuristics produce schedules satisfying every
    /// §3.2.1 constraint on random application sets and periods.
    #[test]
    fn insertion_always_produces_valid_schedules(
        apps in arb_periodic_apps(),
        period_factor in 1.0f64..6.0,
    ) {
        let platform = Platform::new("prop", 4_000, Bw::gib_per_sec(0.05),
                                     Bw::gib_per_sec(10.0));
        let t0: Time = apps.iter().map(|a| a.span(&platform)).fold(Time::ZERO, Time::max);
        let period = t0 * period_factor;
        for heuristic in [InsertionHeuristic::Throughput, InsertionHeuristic::Congestion] {
            let schedule = build_schedule(&platform, &apps, period, heuristic);
            schedule.validate(&platform).map_err(|e| {
                TestCaseError::fail(format!("{}: {e}", heuristic.name()))
            })?;
            // Steady state is well-formed.
            let report = schedule.steady_state(&platform);
            prop_assert!(report.sys_efficiency >= 0.0);
            prop_assert!(report.sys_efficiency <= report.upper_limit + 1e-9);
        }
    }

    /// The unrolled finite-horizon report converges to the analytic
    /// steady state (equation (1) of the paper).
    #[test]
    fn unroll_converges_to_steady_state(apps in arb_periodic_apps()) {
        let platform = Platform::new("prop", 4_000, Bw::gib_per_sec(0.05),
                                     Bw::gib_per_sec(10.0));
        let t0: Time = apps.iter().map(|a| a.span(&platform)).fold(Time::ZERO, Time::max);
        let schedule = build_schedule(&platform, &apps, t0 * 3.0,
                                      InsertionHeuristic::Congestion);
        // Only meaningful when everything got scheduled.
        if schedule.plans.iter().any(|p| p.n_per() == 0) {
            return Ok(());
        }
        let steady = schedule.steady_state(&platform);
        let long = unroll_report(&schedule, &platform, 400);
        prop_assert!(
            (long.sys_efficiency - steady.sys_efficiency).abs() < 5e-3,
            "unrolled {} vs steady {}", long.sys_efficiency, steady.sys_efficiency
        );
    }

    /// Registry cross-validation on *randomized* schedules (extends the
    /// fixed-case tests in `sim::periodic_exec`): replaying a timetable
    /// through the fluid engine reproduces `unroll_report`'s analytic
    /// per-application completion times and objectives — the invariant
    /// that lets `periodic:*` campaign cells stand in for the §3.2
    /// analytic machinery.
    #[test]
    fn engine_replay_matches_analytic_unrolling(
        apps in arb_periodic_apps(),
        period_factor in 1.0f64..4.0,
        congestion_insertion in any::<bool>(),
    ) {
        let heuristic = if congestion_insertion {
            InsertionHeuristic::Congestion
        } else {
            InsertionHeuristic::Throughput
        };
        let platform = Platform::new("prop", 4_000, Bw::gib_per_sec(0.05),
                                     Bw::gib_per_sec(10.0));
        let t0: Time = apps.iter().map(|a| a.span(&platform)).fold(Time::ZERO, Time::max);
        let schedule = build_schedule(&platform, &apps, t0 * period_factor, heuristic);
        // Replay is only defined when everyone is scheduled (a starved
        // application would never be granted bandwidth — the registry
        // rejects such schedules at build time).
        if schedule.plans.iter().any(|p| p.n_per() == 0) {
            return Ok(());
        }
        let periods = 3;
        let replay = replay_apps(&schedule, periods);
        let mut policy = TimetablePolicy::new(schedule.clone());
        let out = simulate(&platform, &replay, &mut policy, &SimConfig::default())
            .map_err(|e| TestCaseError::fail(format!("replay failed: {e}")))?;
        let expected = unroll_report(&schedule, &platform, periods);
        for (got, want) in out.report.per_app.iter().zip(expected.per_app.iter()) {
            prop_assert_eq!(got.id, want.id);
            prop_assert!(
                got.finish.approx_eq(want.finish),
                "{}: finish {} vs analytic {}", got.id, got.finish, want.finish
            );
            prop_assert!(
                (got.rho_tilde - want.rho_tilde).abs() < 1e-6,
                "{}: rho_tilde {} vs analytic {}", got.id, got.rho_tilde, want.rho_tilde
            );
        }
        prop_assert!((out.report.sys_efficiency - expected.sys_efficiency).abs() < 1e-6);
        prop_assert!(
            expected.dilation.is_infinite()
                || (out.report.dilation - expected.dilation).abs() < 1e-6
        );
    }
}

/// Period search dominates single-period construction on its objective.
#[test]
fn period_search_dominates_fixed_period() {
    let platform = Platform::intrepid();
    let apps: Vec<PeriodicAppSpec> = congested_moment(&platform, 3)
        .iter()
        .map(|a| PeriodicAppSpec::from_app(a).unwrap())
        .collect();
    let t0: Time = apps
        .iter()
        .map(|a| a.span(&platform))
        .fold(Time::ZERO, Time::max);
    let single = build_schedule(&platform, &apps, t0, InsertionHeuristic::Congestion)
        .steady_state(&platform);
    let searched = PeriodSearch::new(PeriodicObjective::Dilation)
        .with_epsilon(0.05)
        .run(&platform, &apps, InsertionHeuristic::Congestion)
        .unwrap();
    assert!(
        searched.report.dilation <= single.dilation + 1e-9,
        "search {} vs single-period {}",
        searched.report.dilation,
        single.dilation
    );
}

/// Theorem 1 end-to-end: a feasible 3-Partition instance maps to a
/// scheduling instance whose proof schedule reaches Dilation 1 and
/// SysEfficiency (n−1)/n, and the partition can be recovered from it;
/// the scheduling instance is also digestible by the general periodic
/// machinery (valid schedules, even if heuristics need a longer period).
#[test]
fn theorem1_reduction_end_to_end() {
    let instance = ThreePartition::new(12, vec![4, 4, 4, 5, 4, 3, 6, 4, 2, 7, 3, 2]).unwrap();
    let solution = instance.brute_force().expect("feasible");
    let proof = instance.schedule_from_partition(&solution);
    assert_eq!(proof.verify().unwrap(), 1.0);
    assert!((proof.sys_efficiency() - 0.75).abs() < 1e-12);
    let recovered = proof.extract_partition().unwrap();
    for triplet in &recovered {
        let sum: u64 = triplet.iter().map(|&k| instance.items()[k]).sum();
        assert_eq!(sum, instance.target());
    }

    // The reduction's scheduling instance works in the general machinery.
    let (platform, apps) = instance.to_scheduling_instance(Bw::gib_per_sec(0.1));
    let t0: Time = apps
        .iter()
        .map(|a| a.span(&platform))
        .fold(Time::ZERO, Time::max);
    for heuristic in [
        InsertionHeuristic::Throughput,
        InsertionHeuristic::Congestion,
    ] {
        let schedule = build_schedule(&platform, &apps, t0 * 3.0, heuristic);
        schedule.validate(&platform).unwrap();
    }
}

/// An infeasible 3-Partition instance has no brute-force certificate —
/// and hence no proof schedule can be constructed from one.
#[test]
fn theorem1_infeasible_instance() {
    let instance = ThreePartition::new(20, vec![10, 10, 10, 4, 3, 3]).unwrap();
    assert!(instance.brute_force().is_none());
}
